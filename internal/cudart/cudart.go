// Package cudart simulates the CUDA 3.2 driver + runtime library that
// the paper's runtime is built on and compared against.
//
// It reproduces the baseline behaviours the evaluation depends on:
//
//   - one CUDA context per application thread, created on a specific
//     device (cudaSetDevice), with an initial device-memory reservation
//     per context;
//   - a hard limit of eight concurrent contexts per device, matching the
//     paper's empirical observation on a Tesla C2050 (§1);
//   - instability when more than eight concurrent client *processes*
//     use the runtime directly (§5.3.2: "the CUDA runtime does not
//     currently support more than eight concurrent jobs stably") —
//     modeled as an attach limit that the gvrt runtime, being a single
//     process with few persistent contexts, never trips;
//   - first-come-first-served service of device operations: kernels from
//     different contexts time-share the execution engine;
//   - allocation failure when the aggregate memory requirements of
//     co-resident contexts exceed device capacity.
package cudart

import (
	"sync"

	"gvrt/internal/api"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
)

// Defaults for the observed CUDA 3.2 limits (see package comment).
const (
	// DefaultContextReservation is the device memory each context
	// reserves at creation.
	DefaultContextReservation = 64 << 20
	// DefaultMaxContextsPerDevice is the observed per-device limit on
	// concurrent contexts.
	DefaultMaxContextsPerDevice = 8
	// DefaultMaxProcesses is the observed node-wide limit on concurrent
	// client processes using the bare runtime stably.
	DefaultMaxProcesses = 8
)

// Runtime is one node's CUDA driver + runtime instance.
type Runtime struct {
	clock *sim.Clock

	// Limits are fixed at construction; see the Default* constants.
	contextReservation   uint64
	maxContextsPerDevice int
	maxProcesses         int

	mu         sync.Mutex
	devices    []*gpu.Device
	ctxPerDev  map[int]int
	processes  int
	everCtx    int64 // total contexts ever created, for metrics
	everProcs  int64
	destroyedC int64
}

// New creates a runtime managing the given devices with default limits.
func New(clock *sim.Clock, devices ...*gpu.Device) *Runtime {
	return &Runtime{
		clock:                clock,
		contextReservation:   DefaultContextReservation,
		maxContextsPerDevice: DefaultMaxContextsPerDevice,
		maxProcesses:         DefaultMaxProcesses,
		devices:              append([]*gpu.Device(nil), devices...),
		ctxPerDev:            make(map[int]int),
	}
}

// Clock returns the model clock the runtime runs on.
func (rt *Runtime) Clock() *sim.Clock { return rt.clock }

// SetLimits overrides the modeled CUDA limits; zero values keep the
// current settings. Intended for tests and experiments that scale the
// hardware model down.
func (rt *Runtime) SetLimits(contextReservation uint64, maxContextsPerDevice, maxProcesses int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if contextReservation > 0 {
		rt.contextReservation = contextReservation
	}
	if maxContextsPerDevice > 0 {
		rt.maxContextsPerDevice = maxContextsPerDevice
	}
	if maxProcesses > 0 {
		rt.maxProcesses = maxProcesses
	}
}

// ContextReservation reports the device memory each context reserves.
func (rt *Runtime) ContextReservation() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.contextReservation
}

// DeviceCount mirrors cudaGetDeviceCount.
func (rt *Runtime) DeviceCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.devices)
}

// Device returns the device with ordinal i, or nil if out of range.
func (rt *Runtime) Device(i int) *gpu.Device {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if i < 0 || i >= len(rt.devices) {
		return nil
	}
	return rt.devices[i]
}

// Devices returns a snapshot of the device list.
func (rt *Runtime) Devices() []*gpu.Device {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]*gpu.Device(nil), rt.devices...)
}

// AddDevice hot-adds a device (dynamic upgrade) and returns its ordinal.
func (rt *Runtime) AddDevice(d *gpu.Device) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.devices = append(rt.devices, d)
	return len(rt.devices) - 1
}

// Process is an attached bare-runtime client process.
type Process struct {
	rt   *Runtime
	once sync.Once
}

// AttachProcess registers a client process with the bare runtime. Above
// the stability limit it fails with ErrRuntimeUnstable, reproducing the
// paper's observation that more than eight concurrent CUDA jobs cannot
// be handled stably.
func (rt *Runtime) AttachProcess() (*Process, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.processes >= rt.maxProcesses {
		return nil, api.ErrRuntimeUnstable
	}
	rt.processes++
	rt.everProcs++
	return &Process{rt: rt}, nil
}

// Detach releases the process slot. Safe to call more than once.
func (p *Process) Detach() {
	p.once.Do(func() {
		p.rt.mu.Lock()
		defer p.rt.mu.Unlock()
		p.rt.processes--
	})
}

// AttachedProcesses reports the current number of attached processes.
func (rt *Runtime) AttachedProcesses() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.processes
}

// CreateContext spawns a CUDA context on device dev, reserving the
// initial allocation. It fails with ErrInvalidDevice for a bad ordinal,
// ErrTooManyContexts past the per-device limit, and ErrMemoryAllocation
// when the reservation cannot be carved out of device memory — the
// failure mode that caps how many applications can share a GPU under
// the bare runtime (§1).
func (rt *Runtime) CreateContext(dev int) (*Context, error) {
	rt.mu.Lock()
	if dev < 0 || dev >= len(rt.devices) {
		rt.mu.Unlock()
		return nil, api.ErrInvalidDevice
	}
	d := rt.devices[dev]
	if rt.ctxPerDev[dev] >= rt.maxContextsPerDevice {
		rt.mu.Unlock()
		return nil, api.ErrTooManyContexts
	}
	rt.ctxPerDev[dev]++
	rt.everCtx++
	rt.mu.Unlock()

	rt.clock.Sleep(gpu.ContextCreateTime)
	res, err := d.Malloc(rt.contextReservation)
	if err != nil {
		rt.mu.Lock()
		rt.ctxPerDev[dev]--
		rt.mu.Unlock()
		return nil, err
	}
	return &Context{
		rt:       rt,
		devIndex: dev,
		dev:      d,
		reserved: res,
		binaries: make(map[string]api.FatBinary),
	}, nil
}

// ContextsOn reports the number of live contexts on device dev.
func (rt *Runtime) ContextsOn(dev int) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ctxPerDev[dev]
}
