package cudart

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
)

func newTestRuntime(specs ...gpu.Spec) *Runtime {
	clock := sim.NewClock(1e-6)
	if len(specs) == 0 {
		specs = []gpu.Spec{gpu.TeslaC2050}
	}
	devs := make([]*gpu.Device, len(specs))
	for i, s := range specs {
		devs[i] = gpu.NewDevice(i, s, clock)
	}
	return New(clock, devs...)
}

func TestDeviceCount(t *testing.T) {
	rt := newTestRuntime(gpu.TeslaC2050, gpu.TeslaC2050, gpu.TeslaC1060)
	if rt.DeviceCount() != 3 {
		t.Errorf("DeviceCount = %d, want 3", rt.DeviceCount())
	}
	if rt.Device(2).Spec().Name != "Tesla C1060" {
		t.Errorf("Device(2) = %v", rt.Device(2))
	}
	if rt.Device(3) != nil || rt.Device(-1) != nil {
		t.Error("out-of-range Device should return nil")
	}
}

func TestAddDevice(t *testing.T) {
	rt := newTestRuntime()
	id := rt.AddDevice(gpu.NewDevice(1, gpu.Quadro2000, rt.Clock()))
	if id != 1 || rt.DeviceCount() != 2 {
		t.Errorf("AddDevice -> id=%d count=%d", id, rt.DeviceCount())
	}
}

func TestCreateContextBadDevice(t *testing.T) {
	rt := newTestRuntime()
	if _, err := rt.CreateContext(5); !errors.Is(err, api.ErrInvalidDevice) {
		t.Errorf("CreateContext(5) err = %v, want ErrInvalidDevice", err)
	}
}

func TestContextReservationConsumesMemory(t *testing.T) {
	rt := newTestRuntime()
	before := rt.Device(0).Available()
	ctx, err := rt.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	after := rt.Device(0).Available()
	if before-after != DefaultContextReservation {
		t.Errorf("context reserved %d bytes, want %d", before-after, uint64(DefaultContextReservation))
	}
	ctx.Destroy()
	if rt.Device(0).Available() != before {
		t.Error("Destroy did not release the reservation")
	}
}

// TestContextLimit reproduces the paper's observation (§1, §5.3.1) that
// the CUDA runtime supports at most eight concurrent contexts per
// device.
func TestContextLimit(t *testing.T) {
	rt := newTestRuntime()
	var ctxs []*Context
	for i := 0; i < DefaultMaxContextsPerDevice; i++ {
		ctx, err := rt.CreateContext(0)
		if err != nil {
			t.Fatalf("context %d: %v", i, err)
		}
		ctxs = append(ctxs, ctx)
	}
	if _, err := rt.CreateContext(0); !errors.Is(err, api.ErrTooManyContexts) {
		t.Errorf("9th context err = %v, want ErrTooManyContexts", err)
	}
	// Destroying one frees a slot.
	ctxs[0].Destroy()
	if _, err := rt.CreateContext(0); err != nil {
		t.Errorf("context after destroy err = %v", err)
	}
}

// TestProcessLimit reproduces §5.3.2: more than eight concurrent client
// processes cannot use the bare runtime stably.
func TestProcessLimit(t *testing.T) {
	rt := newTestRuntime()
	var procs []*Process
	for i := 0; i < DefaultMaxProcesses; i++ {
		p, err := rt.AttachProcess()
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
		procs = append(procs, p)
	}
	if _, err := rt.AttachProcess(); !errors.Is(err, api.ErrRuntimeUnstable) {
		t.Errorf("9th process err = %v, want ErrRuntimeUnstable", err)
	}
	procs[0].Detach()
	procs[0].Detach() // idempotent
	if rt.AttachedProcesses() != DefaultMaxProcesses-1 {
		t.Errorf("AttachedProcesses = %d", rt.AttachedProcesses())
	}
	if _, err := rt.AttachProcess(); err != nil {
		t.Errorf("attach after detach err = %v", err)
	}
}

func TestAggregateMemoryOOM(t *testing.T) {
	// Two contexts whose aggregate footprint exceeds the device fail,
	// even though each would fit alone — the §1 scenario that forces
	// serialization under the bare runtime.
	rt := newTestRuntime()
	cap := rt.Device(0).Capacity()
	big := cap * 2 / 3

	a, err := rt.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Destroy()
	b, err := rt.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Destroy()

	if _, err := a.Malloc(big); err != nil {
		t.Fatalf("first big alloc: %v", err)
	}
	if _, err := b.Malloc(big); !errors.Is(err, api.ErrMemoryAllocation) {
		t.Errorf("second big alloc err = %v, want ErrMemoryAllocation", err)
	}
}

func TestContextIsolation(t *testing.T) {
	rt := newTestRuntime()
	a, _ := rt.CreateContext(0)
	b, _ := rt.CreateContext(0)
	defer a.Destroy()
	defer b.Destroy()

	p, err := a.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Free(p); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("cross-context Free err = %v, want ErrInvalidDevicePointer", err)
	}
	if err := b.MemcpyHD(p, []byte{1}, 0); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("cross-context MemcpyHD err = %v, want ErrInvalidDevicePointer", err)
	}
	if _, err := b.MemcpyDH(p, 1); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("cross-context MemcpyDH err = %v, want ErrInvalidDevicePointer", err)
	}
}

func TestLaunchUnregisteredKernel(t *testing.T) {
	rt := newTestRuntime()
	ctx, _ := rt.CreateContext(0)
	defer ctx.Destroy()
	err := ctx.Launch(api.LaunchCall{Kernel: "nope"})
	if !errors.Is(err, api.ErrNotRegistered) {
		t.Errorf("launch err = %v, want ErrNotRegistered", err)
	}
}

func TestLaunchRunsImplAndTransformsData(t *testing.T) {
	const binID = "cudart-test-bin"
	api.RegisterKernelImpl(binID, "double", func(mem api.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		n := int(scalars[0])
		for i := 0; i < n; i++ {
			buf[i] *= 2
		}
		return nil
	})
	defer api.RegisterKernelImpl(binID, "double", nil)

	rt := newTestRuntime()
	ctx, _ := rt.CreateContext(0)
	defer ctx.Destroy()
	if err := ctx.RegisterFatBinary(api.FatBinary{
		ID:      binID,
		Kernels: []api.KernelMeta{{Name: "double", BaseTime: time.Millisecond}},
	}); err != nil {
		t.Fatal(err)
	}
	p, err := ctx.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.MemcpyHD(p, []byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch(api.LaunchCall{
		Kernel:  "double",
		PtrArgs: []api.DevPtr{p},
		Scalars: []uint64{4},
	}); err != nil {
		t.Fatal(err)
	}
	out, err := ctx.MemcpyDH(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{2, 4, 6, 8}) {
		t.Errorf("kernel result = %v, want [2 4 6 8]", out)
	}
}

func TestLaunchValidatesPointerArgs(t *testing.T) {
	rt := newTestRuntime()
	ctx, _ := rt.CreateContext(0)
	defer ctx.Destroy()
	if err := ctx.RegisterFatBinary(api.FatBinary{
		ID:      "b",
		Kernels: []api.KernelMeta{{Name: "k", BaseTime: time.Millisecond}},
	}); err != nil {
		t.Fatal(err)
	}
	err := ctx.Launch(api.LaunchCall{Kernel: "k", PtrArgs: []api.DevPtr{0xbad}})
	if !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("launch with wild pointer err = %v, want ErrInvalidDevicePointer", err)
	}
}

func TestSynchronizeReportsFailedDevice(t *testing.T) {
	rt := newTestRuntime()
	ctx, _ := rt.CreateContext(0)
	defer ctx.Destroy()
	if err := ctx.Synchronize(); err != nil {
		t.Fatalf("healthy Synchronize: %v", err)
	}
	rt.Device(0).Fail()
	if err := ctx.Synchronize(); !errors.Is(err, api.ErrDeviceUnavailable) {
		t.Errorf("Synchronize on failed device err = %v", err)
	}
	rt.Device(0).Restore()
}

func TestDestroyReleasesEverything(t *testing.T) {
	rt := newTestRuntime()
	before := rt.Device(0).Available()
	ctx, _ := rt.CreateContext(0)
	for i := 0; i < 5; i++ {
		if _, err := ctx.Malloc(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	ctx.Destroy()
	ctx.Destroy() // idempotent
	if got := rt.Device(0).Available(); got != before {
		t.Errorf("after Destroy, Available = %d, want %d", got, before)
	}
	if rt.ContextsOn(0) != 0 {
		t.Errorf("ContextsOn(0) = %d after Destroy", rt.ContextsOn(0))
	}
	if _, err := ctx.Malloc(1); err == nil {
		t.Error("Malloc on destroyed context should fail")
	}
}

func TestContextMemoryInUse(t *testing.T) {
	rt := newTestRuntime()
	ctx, _ := rt.CreateContext(0)
	defer ctx.Destroy()
	if ctx.MemoryInUse() != 0 {
		t.Errorf("fresh context MemoryInUse = %d", ctx.MemoryInUse())
	}
	p, _ := ctx.Malloc(1 << 20)
	if ctx.MemoryInUse() != 1<<20 {
		t.Errorf("MemoryInUse = %d, want 1MiB", ctx.MemoryInUse())
	}
	if err := ctx.Free(p); err != nil {
		t.Fatal(err)
	}
	if ctx.MemoryInUse() != 0 {
		t.Errorf("MemoryInUse after Free = %d", ctx.MemoryInUse())
	}
}

func TestContextMemset(t *testing.T) {
	rt := newTestRuntime()
	ctx, _ := rt.CreateContext(0)
	defer ctx.Destroy()
	p, err := ctx.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Memset(p, 9, 8); err != nil {
		t.Fatal(err)
	}
	out, err := ctx.MemcpyDH(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || out[0] != 9 {
		t.Errorf("memset result = %v", out)
	}
	// Zero fill on an untouched allocation stays synthetic.
	q, _ := ctx.Malloc(256)
	if err := ctx.Memset(q, 0, 256); err != nil {
		t.Fatal(err)
	}
	zout, err := ctx.MemcpyDH(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if zout != nil {
		t.Error("zero memset materialised device backing")
	}
	if err := ctx.Memset(0xbad, 1, 1); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("wild memset err = %v", err)
	}
}

func TestContextMemcpyDD(t *testing.T) {
	rt := newTestRuntime()
	ctx, _ := rt.CreateContext(0)
	defer ctx.Destroy()
	src, _ := ctx.Malloc(64)
	dst, _ := ctx.Malloc(64)
	if err := ctx.MemcpyHD(src, []byte{5, 6, 7}, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.MemcpyDD(dst, src, 3); err != nil {
		t.Fatal(err)
	}
	out, err := ctx.MemcpyDH(dst, 3)
	if err != nil || len(out) != 3 || out[2] != 7 {
		t.Errorf("MemcpyDD = %v, %v", out, err)
	}
	other, _ := rt.CreateContext(0)
	defer other.Destroy()
	foreign, _ := other.Malloc(64)
	if err := ctx.MemcpyDD(dst, foreign, 1); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("cross-context MemcpyDD err = %v", err)
	}
	if ctx.Device() == nil || ctx.DeviceIndex() != 0 {
		t.Error("context device accessors broken")
	}
}
