package cudart

import (
	"fmt"
	"sort"
	"sync"

	"gvrt/internal/api"
	"gvrt/internal/gpu"
)

// Context is a CUDA context: the unit of isolation the bare runtime
// offers. It owns a set of device allocations on one device and the fat
// binaries registered by its application thread. Methods return
// api.Error codes like the real library returns cudaError_t.
//
// A Context is safe for concurrent use, though CUDA applications
// normally issue calls from a single thread per context.
type Context struct {
	rt       *Runtime
	devIndex int
	dev      *gpu.Device
	reserved api.DevPtr

	mu sync.Mutex
	// allocs is kept sorted by base pointer: ownership checks run per
	// pointer on every memcpy — and per item on batched submissions —
	// so membership must be a binary search, not a map scan.
	allocs    []allocSpan
	binaries  map[string]api.FatBinary
	destroyed bool
}

// allocSpan is one device allocation of the context.
type allocSpan struct {
	base api.DevPtr
	size uint64
}

// allocIndex returns the position of the span containing ptr, or -1.
// Caller holds c.mu.
func (c *Context) allocIndex(ptr api.DevPtr) int {
	i := sort.Search(len(c.allocs), func(i int) bool { return c.allocs[i].base > ptr })
	if i > 0 {
		if sp := c.allocs[i-1]; ptr < sp.base+api.DevPtr(sp.size) {
			return i - 1
		}
	}
	return -1
}

// Device returns the device the context lives on.
func (c *Context) Device() *gpu.Device { return c.dev }

// DeviceIndex returns the ordinal of the context's device.
func (c *Context) DeviceIndex() int { return c.devIndex }

func (c *Context) live() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.destroyed {
		return api.ErrInvalidValue
	}
	return nil
}

// RegisterFatBinary mirrors __cudaRegisterFatBinary plus the per-kernel
// registration calls: it makes the binary's kernels launchable in this
// context.
func (c *Context) RegisterFatBinary(fb api.FatBinary) error {
	if err := c.live(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.binaries[fb.ID] = fb
	return nil
}

// Malloc mirrors cudaMalloc.
func (c *Context) Malloc(size uint64) (api.DevPtr, error) {
	if err := c.live(); err != nil {
		return 0, err
	}
	p, err := c.dev.Malloc(size)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	i := sort.Search(len(c.allocs), func(i int) bool { return c.allocs[i].base > p })
	c.allocs = append(c.allocs, allocSpan{})
	copy(c.allocs[i+1:], c.allocs[i:])
	c.allocs[i] = allocSpan{base: p, size: size}
	c.mu.Unlock()
	return p, nil
}

// Free mirrors cudaFree. Only pointers allocated by this context are
// valid: contexts are isolated address spaces.
func (c *Context) Free(p api.DevPtr) error {
	if err := c.live(); err != nil {
		return err
	}
	c.mu.Lock()
	i := c.allocIndex(p)
	mine := i >= 0 && c.allocs[i].base == p
	if mine {
		c.allocs = append(c.allocs[:i], c.allocs[i+1:]...)
	}
	c.mu.Unlock()
	if !mine {
		return api.ErrInvalidDevicePointer
	}
	return c.dev.Free(p)
}

// owns reports whether ptr falls inside one of this context's
// allocations (pointers may point mid-allocation).
func (c *Context) owns(ptr api.DevPtr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocIndex(ptr) >= 0
}

// MemcpyHD mirrors cudaMemcpy(HostToDevice). data carries real bytes or,
// when nil, size describes a synthetic (timing-only) transfer.
func (c *Context) MemcpyHD(dst api.DevPtr, data []byte, size uint64) error {
	if err := c.live(); err != nil {
		return err
	}
	if !c.owns(dst) {
		return api.ErrInvalidDevicePointer
	}
	return c.dev.CopyIn(dst, data, size)
}

// MemcpyHDBatch mirrors a vectored cudaMemcpy(HostToDevice): every
// destination is validated against this context's allocations, then the
// transfers land as a single copy-engine submission (gpu.CopyInBatch).
func (c *Context) MemcpyHDBatch(items []api.HDCopy) error {
	if err := c.live(); err != nil {
		return err
	}
	for i := range items {
		if !c.owns(items[i].Dst) {
			return api.ErrInvalidDevicePointer
		}
	}
	return c.dev.CopyInBatch(items)
}

// MemcpyDH mirrors cudaMemcpy(DeviceToHost).
func (c *Context) MemcpyDH(src api.DevPtr, size uint64) ([]byte, error) {
	if err := c.live(); err != nil {
		return nil, err
	}
	if !c.owns(src) {
		return nil, api.ErrInvalidDevicePointer
	}
	return c.dev.CopyOut(src, size)
}

// MemcpyDHBatch lands several device→host transfers as one copy-engine
// submission (see Device.CopyOutBatch). The returned slice is parallel
// to items; entries are nil for synthetic allocations.
func (c *Context) MemcpyDHBatch(items []api.DHCopy) ([][]byte, error) {
	if err := c.live(); err != nil {
		return nil, err
	}
	for i := range items {
		if !c.owns(items[i].Src) {
			return nil, api.ErrInvalidDevicePointer
		}
	}
	return c.dev.CopyOutBatch(items)
}

// Memset mirrors cudaMemset within the context: the fill is applied to
// real backing only when the allocation already carries data.
func (c *Context) Memset(dst api.DevPtr, value byte, size uint64) error {
	if err := c.live(); err != nil {
		return err
	}
	if !c.owns(dst) {
		return api.ErrInvalidDevicePointer
	}
	data := []byte(nil)
	if value != 0 {
		data = make([]byte, size)
		for i := range data {
			data[i] = value
		}
	}
	return c.dev.CopyIn(dst, data, size)
}

// MemcpyDD mirrors cudaMemcpy(DeviceToDevice) within the context.
func (c *Context) MemcpyDD(dst, src api.DevPtr, size uint64) error {
	if err := c.live(); err != nil {
		return err
	}
	if !c.owns(dst) || !c.owns(src) {
		return api.ErrInvalidDevicePointer
	}
	return c.dev.CopyDD(dst, src, size)
}

// findKernel locates kernel metadata by name across the context's
// registered binaries, returning the binary ID it came from.
func (c *Context) findKernel(name string) (api.KernelMeta, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, fb := range c.binaries {
		for _, k := range fb.Kernels {
			if k.Name == name {
				return k, id, nil
			}
		}
	}
	return api.KernelMeta{}, "", api.ErrNotRegistered
}

// argMem adapts a launch's pointer arguments to api.KernelMemory.
type argMem struct {
	dev  *gpu.Device
	ptrs []api.DevPtr
}

func (m argMem) Arg(i int) ([]byte, error) {
	if i < 0 || i >= len(m.ptrs) {
		return nil, api.ErrInvalidValue
	}
	return m.dev.Bytes(m.ptrs[i])
}

// Launch mirrors cudaConfigureCall+cudaLaunch: it validates the pointer
// arguments, occupies the device for the kernel's modeled duration
// (scaled by device speed, Repeat times) and applies the registered
// host-side implementation, if any, to the device buffers.
func (c *Context) Launch(call api.LaunchCall) error {
	if err := c.live(); err != nil {
		return err
	}
	meta, binID, err := c.findKernel(call.Kernel)
	if err != nil {
		return err
	}
	for _, p := range call.PtrArgs {
		if !c.owns(p) {
			return api.ErrInvalidDevicePointer
		}
	}
	var fn func() error
	if impl, ok := api.KernelImpl(binID, call.Kernel); ok {
		mem := argMem{dev: c.dev, ptrs: call.PtrArgs}
		fn = func() (err error) {
			// A buggy kernel implementation must surface as a launch
			// failure, like a faulting kernel on real hardware — never
			// take the runtime down.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("kernel %s panicked: %v: %w", call.Kernel, r, api.ErrLaunchFailure)
				}
			}()
			return impl(mem, call.Scalars)
		}
	}
	return c.dev.Exec(meta.BaseTime, call.Launches(), fn)
}

// Synchronize mirrors cudaDeviceSynchronize. Device operations in this
// simulation are synchronous, so this only verifies device health.
func (c *Context) Synchronize() error {
	if err := c.live(); err != nil {
		return err
	}
	if c.dev.Failed() || c.dev.Removed() {
		return api.ErrDeviceUnavailable
	}
	return nil
}

// MemoryInUse reports the bytes this context has allocated (excluding
// the runtime's own reservation).
func (c *Context) MemoryInUse() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum uint64
	for _, sp := range c.allocs {
		sum += sp.size
	}
	return sum
}

// Destroy mirrors cudaDeviceReset for the owning thread: it releases all
// of the context's allocations and its reservation and frees the context
// slot. Destroy is idempotent.
func (c *Context) Destroy() {
	c.mu.Lock()
	if c.destroyed {
		c.mu.Unlock()
		return
	}
	c.destroyed = true
	ptrs := make([]api.DevPtr, 0, len(c.allocs)+1)
	for _, sp := range c.allocs {
		ptrs = append(ptrs, sp.base)
	}
	c.allocs = nil
	c.mu.Unlock()

	// Best-effort cleanup: on a failed device the memory is gone anyway.
	for _, p := range ptrs {
		_ = c.dev.Free(p)
	}
	_ = c.dev.Free(c.reserved)

	c.rt.mu.Lock()
	c.rt.ctxPerDev[c.devIndex]--
	c.rt.destroyedC++
	c.rt.mu.Unlock()
}
