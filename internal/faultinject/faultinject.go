// Package faultinject is the runtime's deterministic fault plane: a
// single place where every layer — transport, devices, memory manager,
// dispatcher, cluster links — asks "does a fault fire here, now?".
//
// A Plan names a set of Rules. Each rule targets one injection Point
// (optionally one labeled instance of it, e.g. a single GPU) and fires
// either probabilistically or at a fixed occurrence count. Every hook
// instance draws from its own sim.RNG stream, forked from the plan seed
// by the hook's (point, label) identity, so a decision is a pure
// function of (seed, point, label, occurrence-number): re-running a
// plan with the same seed reproduces the same fault schedule no matter
// how goroutines interleave elsewhere. That is what makes a failing
// chaos run replayable from its seed alone.
//
// Instrumented code holds a *Hook per site and calls Check() on it; a
// nil hook (no plan installed, or no rule matching the site) is a
// single nil check on the hot path. The paper's §4.6–§4.7 claims —
// binding survives device failure, checkpoint-restart limits replay,
// offloading degrades cleanly under partition — are exercised by
// driving these hooks rather than by bespoke saboteur goroutines.
package faultinject

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
	"gvrt/internal/trace"
)

// Point names a class of injection sites. The constants below are the
// sites currently instrumented; rules referencing other points are
// accepted (their hooks are simply never created).
type Point string

// Instrumented injection points.
const (
	// PointTransportCall fires on each client-side RPC over a
	// fault-wrapped connection (drop, delay, error).
	PointTransportCall Point = "transport.call"
	// PointClusterLink fires on each use of a node's outbound peer
	// link: the dial and every proxied call. Label is the source node's
	// name. ActPartition severs the link permanently.
	PointClusterLink Point = "cluster.link"
	// PointDeviceExec fires on each kernel execution on a device.
	// Label is "gpu<N>". ActFailDevice is a sticky device failure.
	PointDeviceExec Point = "gpu.exec"
	// PointDeviceDMA fires on each DMA transfer (CopyIn/CopyOut).
	// ActDelay models a slow transfer, ActCorrupt an ECC-style
	// corruption of the payload.
	PointDeviceDMA Point = "gpu.dma"
	// PointDeviceMalloc fires on each device allocation (denial).
	PointDeviceMalloc Point = "gpu.malloc"
	// PointSwapWrite fires on each write into the host swap area
	// (host→swap copies, memsets and device→swap spills).
	PointSwapWrite Point = "memmgr.swapwrite"
	// PointSwapAlloc fires on each page-table allocation (denial).
	PointSwapAlloc Point = "memmgr.malloc"
	// PointDispatch fires on each call entering the dispatcher;
	// ActDelay models a scheduler stall.
	PointDispatch Point = "core.dispatch"
	// PointJournalPreSync fires in the checkpoint journal after record
	// bytes reached the OS but before fsync: a crash here may leave a
	// torn tail that recovery must truncate.
	PointJournalPreSync Point = "ckptlog.presync"
	// PointJournalPostSync fires right after the journal's fsync
	// returned: a crash here loses nothing that was acknowledged.
	PointJournalPostSync Point = "ckptlog.postsync"
	// PointJournalCompact fires inside snapshot compaction, once after
	// the temporary snapshot is written and synced (before the atomic
	// rename) and once after the rename (before the journal truncates).
	PointJournalCompact Point = "ckptlog.compact"
	// PointLeaseCheck fires on each lease fence check of a mutating
	// call. ActError models the lease-expiry race: the session's lease
	// is revoked as if a peer stole it the instant before the check, so
	// the owner's in-flight write is rejected with ErrFenced.
	PointLeaseCheck Point = "failover.lease"
	// PointMigrateTransfer fires on the migration source for each wire
	// frame sent to the target. ActError aborts the transfer mid-stream,
	// ActCrash kills the source with a partially-shipped image on the
	// target.
	PointMigrateTransfer Point = "failover.transfer"
	// PointMigrateImport fires on the migration target for each wire
	// frame received. ActCrash kills the target mid-import, leaving a
	// pending-operation record that recovery must resolve.
	PointMigrateImport Point = "failover.import"
	// PointStorePreSync fires in the control-plane store after a commit
	// frame's bytes reached the OS but before fsync: a crash here may
	// leave a torn tail that recovery must truncate.
	PointStorePreSync Point = "ctrlstore.presync"
	// PointStorePostSync fires right after the store's fsync returned:
	// a crash here loses no committed transaction.
	PointStorePostSync Point = "ctrlstore.postsync"
	// PointStoreCompact fires inside store snapshot compaction, once
	// after the temporary snapshot is written and synced (before the
	// atomic rename) and once after the rename (before the WAL
	// truncates) — the same two boundaries as PointJournalCompact.
	PointStoreCompact Point = "ctrlstore.compact"
	// PointCtrlOpStep fires before every journaled step of a
	// control-plane pending operation (begin, each advance, the final
	// commit). ActCrash kills the daemon between steps, leaving a
	// pending-op record that restart must resume or roll back.
	PointCtrlOpStep Point = "ctrlplane.opstep"
)

// Action is what a fired rule does to the operation.
type Action int

// Actions.
const (
	// ActError fails the operation with Rule.Err (or the point's
	// default error code).
	ActError Action = iota
	// ActDelay stalls the operation by Rule.Delay of model time.
	ActDelay
	// ActCorrupt corrupts the operation's payload (DMA transfers).
	ActCorrupt
	// ActDrop tears down the connection (transport calls).
	ActDrop
	// ActFailDevice fails the device stickily: the operation and every
	// later one on that device return ErrDeviceUnavailable, exactly as
	// if the hardware died (§4.6's failure model).
	ActFailDevice
	// ActPartition severs a cluster peer link stickily: the current and
	// all later uses of the link fail until the hook is healed.
	ActPartition
	// ActCrash asks the site to die on the spot — the checkpoint
	// journal's crash points translate it into a SIGKILL of the whole
	// process (or a configured stand-in), modeling a power loss exactly
	// at that boundary.
	ActCrash
)

var actionNames = [...]string{
	ActError:      "error",
	ActDelay:      "delay",
	ActCorrupt:    "corrupt",
	ActDrop:       "drop",
	ActFailDevice: "fail-device",
	ActPartition:  "partition",
	ActCrash:      "crash",
}

// String implements fmt.Stringer.
func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Rule arms one fault at one point. Exactly one trigger should be set:
// Prob for probabilistic faults, AtNth for "the Nth occurrence",
// EveryNth for periodic ones; setting several ORs them.
type Rule struct {
	// Point is the targeted injection point.
	Point Point
	// Label, when non-empty, restricts the rule to the hook instance
	// with that label (e.g. "gpu1"); empty matches every instance.
	Label string
	// Prob is the per-occurrence firing probability in [0,1], drawn
	// from the hook's private stream.
	Prob float64
	// AtNth fires on exactly the Nth occurrence (1-based).
	AtNth uint64
	// EveryNth fires on every Nth occurrence.
	EveryNth uint64
	// After suppresses the rule for the first After occurrences.
	After uint64
	// MaxFires bounds how many times the rule fires (0 = unlimited).
	MaxFires uint64
	// Action selects the fault.
	Action Action
	// Delay is the stall duration for ActDelay.
	Delay time.Duration
	// Err overrides the point's default error code for ActError.
	Err api.Error
}

// Plan is a named, seeded fault schedule.
type Plan struct {
	// Name identifies the plan in logs and post-mortems.
	Name string
	// Seed seeds every hook's private RNG stream; a run is replayable
	// from (plan, seed) alone.
	Seed int64
	// Rules are evaluated per occurrence in order; the first rule that
	// fires decides the action (later probability draws still happen,
	// keeping every rule's stream occurrence-indexed).
	Rules []Rule
}

// Decision is a hook's verdict for one occurrence. The zero value means
// "proceed normally". Sites honour the subset of fields that make sense
// for them and ignore the rest.
type Decision struct {
	// Err, when non-nil, is the error the operation must return.
	Err error
	// Delay is extra model time to stall before proceeding.
	Delay time.Duration
	// Corrupt asks a DMA site to corrupt the payload.
	Corrupt bool
	// FailDevice asks a device site to fail the device stickily.
	FailDevice bool
	// Drop asks a transport site to tear the connection down.
	Drop bool
	// Crash asks the site to kill the process immediately (the journal's
	// armed crash points).
	Crash bool
}

// Fired is one entry of the fault schedule: rule r of the plan fired at
// the hook's Occurrence-th visit.
type Fired struct {
	Point      Point
	Label      string
	Occurrence uint64
	Action     Action
}

// String implements fmt.Stringer.
func (f Fired) String() string {
	if f.Label != "" {
		return fmt.Sprintf("%s[%s] occurrence %d: %s", f.Point, f.Label, f.Occurrence, f.Action)
	}
	return fmt.Sprintf("%s occurrence %d: %s", f.Point, f.Occurrence, f.Action)
}

// Plane is an armed Plan: the object the runtime layers consult.
// A Plane is safe for concurrent use; each hook serialises its own
// occurrences so its decision stream stays occurrence-indexed.
type Plane struct {
	plan Plan
	root *sim.RNG

	mu    sync.Mutex
	hooks map[string]*Hook
	fired []Fired
	// tracer mirrors fired faults into a trace recorder as zero-length
	// "fault:<point>" spans, so an exported timeline visually aligns
	// faults with the recoveries they triggered. Nil records nothing.
	tracer *trace.Tracer
}

// New arms a plan.
func New(plan Plan) *Plane {
	return &Plane{
		plan:  plan,
		root:  sim.NewRNG(plan.Seed),
		hooks: make(map[string]*Hook),
	}
}

// Name returns the plan name.
func (p *Plane) Name() string { return p.plan.Name }

// Seed returns the plan seed — print it with any failure so the run can
// be reproduced.
func (p *Plane) Seed() int64 { return p.plan.Seed }

// Hook returns the hook instance for (point, label), creating it on
// first use, or nil when no rule of the plan can ever match the site —
// so un-faulted sites keep a nil field and the hot path pays exactly
// one nil check. A nil *Plane returns nil for every site.
func (p *Plane) Hook(point Point, label string) *Hook {
	if p == nil {
		return nil
	}
	key := string(point) + "/" + label
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.hooks[key]; ok {
		return h
	}
	var rules []activeRule
	for _, r := range p.plan.Rules {
		if r.Point == point && (r.Label == "" || r.Label == label) {
			rules = append(rules, activeRule{Rule: r})
		}
	}
	if len(rules) == 0 {
		return nil
	}
	h := &Hook{
		plane: p,
		point: point,
		label: label,
		rng:   p.root.Fork(key),
		rules: rules,
	}
	p.hooks[key] = h
	return h
}

// SetTrace mirrors every fired fault into rec as an instant span
// stamped with now()'s model time. Call it before serving; a nil
// recorder disables mirroring. A nil *Plane is a no-op.
func (p *Plane) SetTrace(rec *trace.Recorder, now func() time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if rec == nil {
		p.tracer = nil
	} else {
		p.tracer = &trace.Tracer{Rec: rec, Now: now}
	}
	p.mu.Unlock()
}

// record appends a fired fault to the schedule.
func (p *Plane) record(f Fired) {
	p.mu.Lock()
	p.fired = append(p.fired, f)
	t := p.tracer
	p.mu.Unlock()
	if t != nil {
		t.Span("fault:"+string(f.Point), 0, t.Start(), -1, f.String())
	}
}

// Schedule returns every fault fired so far. Entries from one hook
// appear in occurrence order; entries from different hooks interleave
// in wall order.
func (p *Plane) Schedule() []Fired {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Fired(nil), p.fired...)
}

// Occurrences reports how many times each live hook has been consulted,
// keyed "point/label". Together with Schedule it captures everything a
// replay needs: feeding a fresh plane the same per-hook occurrence
// counts reproduces the same schedule.
func (p *Plane) Occurrences() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.hooks))
	for key, h := range p.hooks {
		out[key] = h.occurrences()
	}
	return out
}

// String renders a post-mortem summary: the plan identity and the fired
// schedule, one fault per line.
func (p *Plane) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan %q seed %d:\n", p.plan.Name, p.plan.Seed)
	sched := p.Schedule()
	if len(sched) == 0 {
		b.WriteString("  (no faults fired)\n")
	}
	for _, f := range sched {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// activeRule is a rule plus its per-hook firing count.
type activeRule struct {
	Rule
	fires uint64
}

// Hook is one armed injection site. The zero of its pointer type (nil)
// is a valid, inert hook: Check on a nil *Hook returns the zero
// Decision, which is the whole cost of an uninstrumented run.
type Hook struct {
	plane *Plane
	point Point
	label string

	mu    sync.Mutex
	rng   *sim.RNG
	n     uint64
	rules []activeRule
	down  bool // sticky: an ActPartition fired
}

// Point returns the hook's injection point.
func (h *Hook) Point() Point { return h.point }

// Label returns the hook's instance label.
func (h *Hook) Label() string { return h.label }

// Check records one occurrence and returns the plan's decision for it.
// Safe for concurrent use; a nil hook always proceeds.
func (h *Hook) Check() Decision {
	if h == nil {
		return Decision{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	var d Decision
	fired := false
	var act Action
	for i := range h.rules {
		r := &h.rules[i]
		hit := false
		// The probability draw happens on every occurrence — even when
		// an earlier rule already fired — so each rule's stream position
		// equals the occurrence number and decisions stay replayable.
		if r.Prob > 0 && h.rng.Float64() < r.Prob {
			hit = true
		}
		if r.AtNth > 0 && h.n == r.AtNth {
			hit = true
		}
		if r.EveryNth > 0 && h.n%r.EveryNth == 0 {
			hit = true
		}
		if h.n <= r.After {
			hit = false
		}
		if r.MaxFires > 0 && r.fires >= r.MaxFires {
			hit = false
		}
		if !hit || fired {
			continue
		}
		r.fires++
		fired = true
		act = r.Action
		switch r.Action {
		case ActError:
			d.Err = errorFor(r.Err, h.point)
		case ActDelay:
			d.Delay = r.Delay
		case ActCorrupt:
			d.Corrupt = true
		case ActDrop:
			d.Drop = true
		case ActFailDevice:
			d.FailDevice = true
			d.Err = api.ErrDeviceUnavailable
		case ActPartition:
			d.Drop = true
			h.down = true
		case ActCrash:
			d.Crash = true
		}
	}
	if h.down && !fired {
		// A severed link stays severed; only the firing itself is a
		// schedule entry.
		d.Drop = true
	}
	if fired {
		h.plane.record(Fired{Point: h.point, Label: h.label, Occurrence: h.n, Action: act})
	}
	return d
}

// Down reports whether a sticky partition has severed this site. A nil
// hook is never down.
func (h *Hook) Down() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// Heal clears a sticky partition (the link comes back).
func (h *Hook) Heal() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.down = false
	h.mu.Unlock()
}

func (h *Hook) occurrences() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// errorFor resolves a rule's error override against the point's default
// failure code: the error the equivalent real-world fault would surface.
func errorFor(override api.Error, point Point) error {
	if override != 0 {
		return override
	}
	switch point {
	case PointTransportCall, PointClusterLink:
		return api.ErrConnectionClosed
	case PointDeviceExec, PointDeviceDMA:
		return api.ErrDeviceUnavailable
	case PointDeviceMalloc:
		return api.ErrMemoryAllocation
	case PointSwapWrite, PointSwapAlloc:
		return api.ErrSwapAllocation
	case PointLeaseCheck:
		return api.ErrFenced
	case PointMigrateTransfer:
		return api.ErrConnectionClosed
	default:
		return api.ErrInvalidValue
	}
}
