package faultinject

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gvrt/internal/api"
)

func TestNilPlaneAndNilHookAreInert(t *testing.T) {
	var p *Plane
	h := p.Hook(PointDeviceExec, "gpu0")
	if h != nil {
		t.Fatal("nil plane produced a hook")
	}
	if d := h.Check(); d != (Decision{}) {
		t.Fatalf("nil hook decided %+v, want zero decision", d)
	}
	if h.Down() {
		t.Error("nil hook reports down")
	}
	h.Heal() // must not panic
}

func TestHookOnlyForMatchingRules(t *testing.T) {
	p := New(Plan{Seed: 1, Rules: []Rule{
		{Point: PointDeviceExec, Label: "gpu1", AtNth: 1, Action: ActError},
		{Point: PointSwapWrite, Prob: 0.5, Action: ActError},
	}})
	if p.Hook(PointDeviceExec, "gpu0") != nil {
		t.Error("label-restricted rule armed the wrong instance")
	}
	if p.Hook(PointDeviceExec, "gpu1") == nil {
		t.Error("matching rule produced no hook")
	}
	if p.Hook(PointSwapWrite, "anything") == nil {
		t.Error("label-less rule should match every instance")
	}
	if p.Hook(PointDispatch, "") != nil {
		t.Error("point with no rules produced a hook")
	}
	if a, b := p.Hook(PointDeviceExec, "gpu1"), p.Hook(PointDeviceExec, "gpu1"); a != b {
		t.Error("Hook is not idempotent per (point, label)")
	}
}

func TestAtNthFiresExactlyOnce(t *testing.T) {
	p := New(Plan{Seed: 9, Rules: []Rule{
		{Point: PointDeviceExec, AtNth: 3, Action: ActError, Err: api.ErrLaunchFailure},
	}})
	h := p.Hook(PointDeviceExec, "gpu0")
	for i := 1; i <= 10; i++ {
		d := h.Check()
		if i == 3 {
			if !errors.Is(d.Err, api.ErrLaunchFailure) {
				t.Fatalf("occurrence 3: got %v, want ErrLaunchFailure", d.Err)
			}
		} else if d.Err != nil {
			t.Fatalf("occurrence %d: unexpected error %v", i, d.Err)
		}
	}
	sched := p.Schedule()
	if len(sched) != 1 || sched[0].Occurrence != 3 || sched[0].Action != ActError {
		t.Fatalf("schedule = %v, want one ActError at occurrence 3", sched)
	}
}

func TestEveryNthAfterAndMaxFires(t *testing.T) {
	p := New(Plan{Seed: 9, Rules: []Rule{
		{Point: PointDispatch, EveryNth: 2, After: 4, MaxFires: 2, Action: ActDelay, Delay: time.Millisecond},
	}})
	h := p.Hook(PointDispatch, "")
	var fired []uint64
	for i := 1; i <= 12; i++ {
		if d := h.Check(); d.Delay > 0 {
			fired = append(fired, uint64(i))
		}
	}
	// Every 2nd occurrence, suppressed through occurrence 4, at most twice.
	want := []uint64{6, 8}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
}

func TestDefaultErrorsPerPoint(t *testing.T) {
	cases := []struct {
		point Point
		want  api.Error
	}{
		{PointTransportCall, api.ErrConnectionClosed},
		{PointClusterLink, api.ErrConnectionClosed},
		{PointDeviceExec, api.ErrDeviceUnavailable},
		{PointDeviceDMA, api.ErrDeviceUnavailable},
		{PointDeviceMalloc, api.ErrMemoryAllocation},
		{PointSwapWrite, api.ErrSwapAllocation},
		{PointSwapAlloc, api.ErrSwapAllocation},
	}
	for _, c := range cases {
		p := New(Plan{Seed: 5, Rules: []Rule{{Point: c.point, AtNth: 1, Action: ActError}}})
		d := p.Hook(c.point, "x").Check()
		if api.Code(d.Err) != c.want {
			t.Errorf("%s: default error %v, want %v", c.point, d.Err, c.want)
		}
	}
}

func TestPartitionIsSticky(t *testing.T) {
	p := New(Plan{Seed: 2, Rules: []Rule{
		{Point: PointClusterLink, Label: "b", AtNth: 2, Action: ActPartition},
	}})
	h := p.Hook(PointClusterLink, "b")
	if d := h.Check(); d.Drop {
		t.Fatal("dropped before the partition fired")
	}
	if d := h.Check(); !d.Drop {
		t.Fatal("partition did not fire at occurrence 2")
	}
	for i := 0; i < 5; i++ {
		if d := h.Check(); !d.Drop {
			t.Fatal("partition is not sticky")
		}
	}
	if !h.Down() {
		t.Error("Down() false after partition")
	}
	// Only the firing itself enters the schedule, not the sticky drops.
	if n := len(p.Schedule()); n != 1 {
		t.Errorf("schedule has %d entries, want 1", n)
	}
	h.Heal()
	if h.Down() {
		t.Error("Down() true after Heal")
	}
	if d := h.Check(); d.Drop {
		t.Error("dropped after Heal with no matching rule occurrence")
	}
}

func TestFailDeviceDecision(t *testing.T) {
	p := New(Plan{Seed: 2, Rules: []Rule{
		{Point: PointDeviceExec, Label: "gpu0", AtNth: 1, Action: ActFailDevice},
	}})
	d := p.Hook(PointDeviceExec, "gpu0").Check()
	if !d.FailDevice {
		t.Error("FailDevice not set")
	}
	if api.Code(d.Err) != api.ErrDeviceUnavailable {
		t.Errorf("err = %v, want ErrDeviceUnavailable", d.Err)
	}
}

// TestScheduleReplaysFromSeed is the core determinism contract: driving
// two planes armed with the same plan through the same per-hook
// occurrence counts yields identical schedules, even though the second
// run interleaves hooks in a different wall order.
func TestScheduleReplaysFromSeed(t *testing.T) {
	plan := Plan{Name: "storm", Seed: 1234, Rules: []Rule{
		{Point: PointDeviceExec, Prob: 0.2, Action: ActFailDevice, MaxFires: 1},
		{Point: PointDeviceDMA, Prob: 0.15, Action: ActDelay, Delay: time.Millisecond},
		{Point: PointSwapWrite, Prob: 0.1, Action: ActError},
	}}
	occ := map[string]uint64{
		"gpu.exec/gpu0":     40,
		"gpu.exec/gpu1":     25,
		"gpu.dma/gpu0":      60,
		"memmgr.swapwrite/": 30,
	}
	run := func(reverse bool) map[string][]Fired {
		p := New(plan)
		type site struct {
			point Point
			label string
			n     uint64
		}
		sites := []site{
			{PointDeviceExec, "gpu0", occ["gpu.exec/gpu0"]},
			{PointDeviceExec, "gpu1", occ["gpu.exec/gpu1"]},
			{PointDeviceDMA, "gpu0", occ["gpu.dma/gpu0"]},
			{PointSwapWrite, "", occ["memmgr.swapwrite/"]},
		}
		if reverse {
			for i, j := 0, len(sites)-1; i < j; i, j = i+1, j-1 {
				sites[i], sites[j] = sites[j], sites[i]
			}
		}
		for _, s := range sites {
			h := p.Hook(s.point, s.label)
			for i := uint64(0); i < s.n; i++ {
				h.Check()
			}
		}
		byHook := make(map[string][]Fired)
		for _, f := range p.Schedule() {
			k := string(f.Point) + "/" + f.Label
			byHook[k] = append(byHook[k], f)
		}
		return byHook
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("per-hook schedules differ across runs of the same seed:\n%v\nvs\n%v", a, b)
	}
	total := 0
	for _, fs := range a {
		total += len(fs)
	}
	if total == 0 {
		t.Fatal("plan fired nothing — determinism test is vacuous; raise probabilities")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	mk := func(seed int64) []Fired {
		p := New(Plan{Seed: seed, Rules: []Rule{
			{Point: PointDeviceDMA, Prob: 0.3, Action: ActCorrupt},
		}})
		h := p.Hook(PointDeviceDMA, "gpu0")
		for i := 0; i < 50; i++ {
			h.Check()
		}
		return p.Schedule()
	}
	if reflect.DeepEqual(mk(1), mk(2)) {
		t.Error("schedules identical across different seeds")
	}
}

func TestOccurrencesTracksChecks(t *testing.T) {
	p := New(Plan{Seed: 3, Rules: []Rule{{Point: PointDeviceExec, Prob: 0.5, Action: ActError}}})
	h := p.Hook(PointDeviceExec, "gpu0")
	for i := 0; i < 7; i++ {
		h.Check()
	}
	occ := p.Occurrences()
	if occ["gpu.exec/gpu0"] != 7 {
		t.Fatalf("occurrences = %v, want gpu.exec/gpu0: 7", occ)
	}
}

// TestConcurrentChecksAreRaceFreeAndOccurrenceComplete hammers one hook
// and the plane map from many goroutines; run under -race this verifies
// the locking, and the occurrence count must equal the total number of
// checks regardless of interleaving.
func TestConcurrentChecksAreRaceFreeAndOccurrenceComplete(t *testing.T) {
	p := New(Plan{Seed: 77, Rules: []Rule{
		{Point: PointDeviceDMA, Prob: 0.2, Action: ActDelay, Delay: time.Microsecond},
		{Point: PointDispatch, Prob: 0.2, Action: ActDelay, Delay: time.Microsecond},
	}})
	const workers, checks = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dma := p.Hook(PointDeviceDMA, "gpu0")
			disp := p.Hook(PointDispatch, "")
			for i := 0; i < checks; i++ {
				dma.Check()
				disp.Check()
				p.Schedule()
			}
		}()
	}
	wg.Wait()
	occ := p.Occurrences()
	if occ["gpu.dma/gpu0"] != workers*checks || occ["core.dispatch/"] != workers*checks {
		t.Fatalf("occurrences = %v, want %d per hook", occ, workers*checks)
	}
}

func TestPlaneStringMentionsSeedAndFirings(t *testing.T) {
	p := New(Plan{Name: "x", Seed: 42, Rules: []Rule{{Point: PointDeviceExec, AtNth: 1, Action: ActFailDevice}}})
	p.Hook(PointDeviceExec, "gpu0").Check()
	s := p.String()
	for _, want := range []string{"42", "fail-device", "gpu.exec", "gpu0"} {
		if !strings.Contains(s, want) {
			t.Errorf("post-mortem %q missing %q", s, want)
		}
	}
}
