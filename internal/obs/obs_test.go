package obs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/trace"
)

func TestRegistryAttribution(t *testing.T) {
	r := NewRegistry()
	a := r.Tenant("a")
	if r.Tenant("a") != a {
		t.Fatal("Tenant not idempotent")
	}
	r.BindCtx(7, a)
	r.ObserveCtx(7, trace.AttrSwapBytes, 100)
	r.ObserveCtx(7, trace.AttrSwapOps, 1)
	r.ObserveCtx(7, trace.AttrCheckpointBytes, 50)
	r.ObserveCtx(7, trace.AttrDedupSaved, 30)
	r.ObserveCtx(7, trace.AttrDedupSaved, -10)
	// Unknown context: silently unattributed, never panics.
	r.ObserveCtx(99, trace.AttrSwapBytes, 1<<30)

	a.SessionJoin()
	a.AddCall(false)
	a.AddCall(true)
	a.AddGPUTime(1000)
	a.AddQueueWait(200)
	a.AddFenceRejection()
	a.AddQuotaReject()
	a.AddMigrationBytes(64)
	a.Launch.Observe(5000)

	u := r.Snapshot()["a"]
	want := api.TenantUsage{
		Sessions: 1, Calls: 2, Errors: 1, Launches: 1, GPUTimeNS: 1000,
		QueueWaitNS: 200, SwapBytes: 100, SwapOps: 1, CheckpointBytes: 50,
		MigrationBytes: 64, DedupSavedBytes: 20, FenceRejections: 1, QuotaRejects: 1,
	}
	got := u
	got.Launch, got.QueueWait = trace.HistSnapshot{}, trace.HistSnapshot{}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("usage = %+v, want %+v", got, want)
	}
	if u.Launch.Count != 1 || u.QueueWait.Count != 1 {
		t.Errorf("histograms not attributed: launch=%d queue=%d", u.Launch.Count, u.QueueWait.Count)
	}

	r.UnbindCtx(7)
	r.ObserveCtx(7, trace.AttrSwapBytes, 500)
	if got := r.Snapshot()["a"].SwapBytes; got != 100 {
		t.Errorf("attribution after unbind: swap bytes = %d, want 100", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := r.Tenant("t")
			r.BindCtx(int64(g), m)
			for i := 0; i < 1000; i++ {
				r.ObserveCtx(int64(g), trace.AttrSwapBytes, 1)
				m.AddCall(false)
			}
		}(g)
	}
	wg.Wait()
	u := r.Snapshot()["t"]
	if u.SwapBytes != 8000 || u.Calls != 8000 {
		t.Errorf("concurrent attribution lost updates: swap=%d calls=%d, want 8000 each", u.SwapBytes, u.Calls)
	}
}

func nodeStats(calls int64, tenant string, gpu int64) api.RuntimeStats {
	var h trace.Histogram
	h.Observe(gpu)
	return api.RuntimeStats{
		CallsServed: calls,
		GPUTimeNS:   gpu,
		SwapBytes:   calls * 10,
		Tenants: map[string]api.TenantUsage{
			tenant: {Calls: calls, GPUTimeNS: gpu, Launch: h.Snapshot()},
		},
		Histograms: map[string]trace.HistSnapshot{"launch_latency": h.Snapshot()},
	}
}

func TestMergeStatsConservation(t *testing.T) {
	a := nodeStats(10, "alpha", 1000)
	b := nodeStats(20, "beta", 3000)
	m := MergeStats(a, b)
	if m.CallsServed != 30 || m.GPUTimeNS != 4000 || m.SwapBytes != 300 {
		t.Errorf("counters not summed: %+v", m)
	}
	if m.Devices != nil {
		t.Errorf("merged stats must not carry per-device detail")
	}
	if got := m.Histograms["launch_latency"].Count; got != 2 {
		t.Errorf("histogram merge count = %d, want 2", got)
	}
	var tenantGPU int64
	for _, u := range m.Tenants {
		tenantGPU += u.GPUTimeNS
	}
	if tenantGPU != m.GPUTimeNS {
		t.Errorf("tenant GPU sum %d != merged total %d", tenantGPU, m.GPUTimeNS)
	}
}

func TestMergeTenantUsageSameTenant(t *testing.T) {
	a := nodeStats(10, "alpha", 1000)
	b := nodeStats(5, "alpha", 500)
	m := MergeStats(a, b)
	u := m.Tenants["alpha"]
	if u.Calls != 15 || u.GPUTimeNS != 1500 || u.Launch.Count != 2 {
		t.Errorf("same-tenant merge wrong: %+v", u)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector("head", func() api.RuntimeStats { return nodeStats(1, "alpha", 100) })
	c.AddPeer("n2", func() (api.RuntimeStats, error) { return nodeStats(2, "beta", 200), nil })
	c.AddPeer("n3", func() (api.RuntimeStats, error) { return api.RuntimeStats{}, errors.New("link down") })

	cs := c.Collect()
	if len(cs.Nodes) != 2 {
		t.Fatalf("reachable nodes = %d, want 2 (head + n2)", len(cs.Nodes))
	}
	if cs.Merged.CallsServed != 3 {
		t.Errorf("merged calls = %d, want 3", cs.Merged.CallsServed)
	}
	if msg := cs.Unreachable["n3"]; !strings.Contains(msg, "link down") {
		t.Errorf("unreachable n3 = %q, want link-down error", msg)
	}
	if got := cs.NodeNames(); len(got) != 2 || got[0] != "head" || got[1] != "n2" {
		t.Errorf("NodeNames = %v", got)
	}
	c.RemovePeer("n3")
	if cs := c.Collect(); len(cs.Unreachable) != 0 {
		t.Errorf("unreachable after RemovePeer: %v", cs.Unreachable)
	}
}

// sloHarness drives an engine with a fake wall clock and mutable usage.
type sloHarness struct {
	now    time.Time
	usage  map[string]api.TenantUsage
	events []SLOEvent
	eng    *SLOEngine
}

func newSLOHarness(t *testing.T, obj Objective) *sloHarness {
	t.Helper()
	h := &sloHarness{now: time.Unix(1000, 0), usage: map[string]api.TenantUsage{}}
	h.eng = NewSLOEngine(SLOEngineOptions{
		Objectives:  func() []Objective { return []Objective{obj} },
		Usage:       func() map[string]api.TenantUsage { return cloneUsage(h.usage) },
		Publish:     func(ev SLOEvent) { h.events = append(h.events, ev) },
		ShortWindow: 10 * time.Second,
		LongWindow:  30 * time.Second,
		Now:         func() time.Time { return h.now },
	})
	return h
}

func cloneUsage(u map[string]api.TenantUsage) map[string]api.TenantUsage {
	out := make(map[string]api.TenantUsage, len(u))
	for k, v := range u {
		out[k] = v
	}
	return out
}

// observeLaunches folds n launches of latNS into the tenant's usage.
func (h *sloHarness) observeLaunches(tenant string, n int, latNS int64) {
	u := h.usage[tenant]
	var hist trace.Histogram
	for i := 0; i < n; i++ {
		hist.Observe(latNS)
	}
	u.Launch = u.Launch.Merge(hist.Snapshot())
	u.Calls += int64(n)
	h.usage[tenant] = u
}

func TestSLOLatencyBreachAndResolve(t *testing.T) {
	h := newSLOHarness(t, Objective{Tenant: "acme", LaunchP99NS: 1 << 20})

	// Healthy traffic: everything far under the objective.
	for i := 0; i < 5; i++ {
		h.observeLaunches("acme", 100, 1<<10)
		h.eng.Tick()
		h.now = h.now.Add(5 * time.Second)
	}
	if len(h.events) != 0 {
		t.Fatalf("events during healthy traffic: %+v", h.events)
	}

	// Latency regression: every launch blows the objective, long enough
	// to poison both windows.
	for i := 0; i < 10; i++ {
		h.observeLaunches("acme", 100, 1<<25)
		h.eng.Tick()
		h.now = h.now.Add(5 * time.Second)
	}
	if len(h.events) != 1 || !h.events[0].Status.Breaching {
		t.Fatalf("want exactly one breach event, got %+v", h.events)
	}
	ev := h.events[0].Status
	if ev.Kind != "launch_p99" || ev.Tenant != "acme" {
		t.Errorf("event identity wrong: %+v", ev)
	}
	if ev.ShortBurn <= 2 || ev.LongBurn <= 2 {
		t.Errorf("burn rates should exceed threshold: %+v", ev)
	}

	st := h.eng.Status()
	if len(st) != 1 || !st[0].Breaching {
		t.Errorf("Status() = %+v, want one breaching row", st)
	}

	// Recovery: healthy again until both windows drain.
	for i := 0; i < 10; i++ {
		h.observeLaunches("acme", 100, 1<<10)
		h.eng.Tick()
		h.now = h.now.Add(5 * time.Second)
	}
	if len(h.events) != 2 || h.events[1].Status.Breaching {
		t.Fatalf("want a resolve event after recovery, got %+v", h.events)
	}
}

func TestSLOErrorRatio(t *testing.T) {
	h := newSLOHarness(t, Objective{Tenant: "acme", MaxErrorRatio: 0.01})
	for i := 0; i < 10; i++ {
		u := h.usage["acme"]
		u.Calls += 100
		u.Errors += 50 // 50% errors against a 1% objective
		h.usage["acme"] = u
		h.eng.Tick()
		h.now = h.now.Add(5 * time.Second)
	}
	if len(h.events) != 1 || !h.events[0].Status.Breaching {
		t.Fatalf("want breach on error ratio, got %+v", h.events)
	}
	if k := h.events[0].Status.Kind; k != "error_ratio" {
		t.Errorf("kind = %q", k)
	}
}

func TestSLONoTrafficNoBurn(t *testing.T) {
	h := newSLOHarness(t, Objective{Tenant: "ghost", LaunchP99NS: 1000, MaxErrorRatio: 0.5})
	for i := 0; i < 5; i++ {
		h.eng.Tick()
		h.now = h.now.Add(5 * time.Second)
	}
	if len(h.events) != 0 {
		t.Errorf("idle tenant produced events: %+v", h.events)
	}
	for _, st := range h.eng.Status() {
		if st.ShortBurn != 0 || st.LongBurn != 0 || st.Breaching {
			t.Errorf("idle tenant burning: %+v", st)
		}
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder("n1", dir, 4)
	f.SetSources(
		func() time.Duration { return 42 * time.Millisecond },
		func() map[string]trace.HistSnapshot {
			var h trace.Histogram
			h.Observe(100)
			return map[string]trace.HistSnapshot{"launch_latency": h.Snapshot()}
		},
		func() api.RuntimeStats { return api.RuntimeStats{CallsServed: 9} },
	)
	for i := 0; i < 6; i++ { // overfill the 4-slot ring
		f.Note("bind", int64(i), 0, "")
	}
	path, err := f.Dump("test")
	if err != nil {
		t.Fatal(err)
	}
	if path != f.Path() {
		t.Errorf("dump path %q != Path() %q", path, f.Path())
	}
	d, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != FlightSchema || d.Node != "n1" || d.Reason != "test" {
		t.Errorf("dump header wrong: %+v", d)
	}
	if len(d.Records) != 4 {
		t.Fatalf("ring retained %d records, want 4", len(d.Records))
	}
	// Oldest-first, and the two oldest records were overwritten.
	if d.Records[0].Seq != 3 || d.Records[3].Seq != 6 {
		t.Errorf("ring order wrong: first seq %d last %d", d.Records[0].Seq, d.Records[3].Seq)
	}
	if d.Seq != 6 {
		t.Errorf("dump seq = %d, want 6", d.Seq)
	}
	if d.Stats == nil || d.Stats.CallsServed != 9 {
		t.Errorf("stats snapshot missing: %+v", d.Stats)
	}
	if d.Hists["launch_latency"].Count != 1 {
		t.Errorf("hist delta missing: %+v", d.Hists)
	}
	if d.Records[0].Model != 42*time.Millisecond {
		t.Errorf("model clock not captured: %v", d.Records[0].Model)
	}

	// Second dump: histogram delta vs the first, so the same snapshot
	// yields an empty delta.
	if _, err := f.Dump("again"); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadFlightDump(f.Path())
	if err != nil {
		t.Fatal(err)
	}
	if d2.Hists["launch_latency"].Count != 0 {
		t.Errorf("second dump delta = %+v, want empty", d2.Hists["launch_latency"])
	}
	if f.Dumps() != 2 {
		t.Errorf("Dumps() = %d, want 2", f.Dumps())
	}
}

func TestFlightRecorderStormDump(t *testing.T) {
	f := NewFlightRecorder("n1", t.TempDir(), 64)
	for i := 0; i < 10; i++ {
		f.Note("fence", 1, 0, "deposed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for f.Dumps() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.Dumps() == 0 {
		t.Fatal("fence storm did not trigger a dump")
	}
	d, err := ReadFlightDump(f.Path())
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != "fence-storm" {
		t.Errorf("reason = %q, want fence-storm", d.Reason)
	}
}

func TestFlightRecorderWrapCrash(t *testing.T) {
	f := NewFlightRecorder("n1", t.TempDir(), 8)
	f.Note("ctrl-op", 0, 0, "tenant-create")
	died := false
	f.WrapCrash(func() { died = true })()
	if !died {
		t.Fatal("WrapCrash did not chain to next")
	}
	d, err := ReadFlightDump(f.Path())
	if err != nil {
		t.Fatalf("crash-point dump unreadable: %v", err)
	}
	if d.Reason != "crash-point" || len(d.Records) != 1 {
		t.Errorf("dump = reason %q records %d", d.Reason, len(d.Records))
	}
	// Nil recorder: WrapCrash still runs next and Note is a no-op.
	var nilF *FlightRecorder
	nilF.Note("x", 0, 0, "")
	ran := false
	nilF.WrapCrash(func() { ran = true })()
	if !ran {
		t.Error("nil recorder WrapCrash dropped next")
	}
}

func TestReadFlightDumpRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"nope/v9"}`), 0o644)
	if _, err := ReadFlightDump(bad); err == nil {
		t.Error("wrong schema accepted")
	}
	torn := filepath.Join(dir, "torn.json")
	os.WriteFile(torn, []byte(`{"schema":"gvrt-fl`), 0o644)
	if _, err := ReadFlightDump(torn); err == nil {
		t.Error("torn JSON accepted")
	}
	if _, err := ReadFlightDump(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}
