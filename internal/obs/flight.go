package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/trace"
)

// FlightRecord is one entry in the black-box ring: a state transition,
// breaker/fence/lease event, span, or crash-point arm the node saw
// recently.
type FlightRecord struct {
	Seq    uint64        `json:"seq"`
	Wall   time.Time     `json:"wall"`
	Model  time.Duration `json:"model_ns"`
	Kind   string        `json:"kind"`
	Ctx    int64         `json:"ctx,omitempty"`
	Device int           `json:"device,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// FlightDump is the on-disk post-mortem artifact: the ring contents at
// dump time plus the histogram deltas since the previous dump and a
// final stats snapshot. gvrt-chaos folds it into its failover
// verdicts; operators read it with `gvrt-chaos -flight-read <path>`.
type FlightDump struct {
	Schema string    `json:"schema"` // "gvrt-flight/v1"
	Node   string    `json:"node"`
	Reason string    `json:"reason"`
	Wall   time.Time `json:"wall"`
	// Seq is the recorder's sequence counter at dump time; records
	// carry their own Seq so dropped (overwritten) history is visible.
	Seq     uint64                        `json:"seq"`
	Records []FlightRecord                `json:"records"`
	Hists   map[string]trace.HistSnapshot `json:"hist_deltas,omitempty"`
	Stats   *api.RuntimeStats             `json:"stats,omitempty"`
}

// FlightSchema identifies a parseable dump.
const FlightSchema = "gvrt-flight/v1"

// FlightRecorder is a bounded per-node black box. Note appends to a
// fixed ring under a short mutex — it is fed only from cold paths
// (state transitions, fence rejections, breaker trips, crash points),
// never from the launch or swap hot paths. Dump writes the ring
// atomically (temp file + rename) so a dump racing a SIGKILL is either
// complete or absent, never torn.
//
// Dumps trigger on: armed faultinject crash points (WrapCrash), fence
// or breaker storms (>= stormThreshold events inside stormWindow), an
// explicit Dump call (panic handlers), and — so an external SIGKILL
// still leaves evidence — a periodic background flush (Run).
type FlightRecorder struct {
	mu       sync.Mutex
	node     string
	path     string
	recs     []FlightRecord
	n        int // filled entries
	head     int // next write position
	seq      uint64
	modelNow func() time.Duration
	hists    func() map[string]trace.HistSnapshot
	stats    func() api.RuntimeStats
	lastHist map[string]trace.HistSnapshot

	stormWindow    time.Duration
	stormThreshold int
	stormTimes     []time.Time
	stormFired     time.Time

	dumps atomic.Int64
}

// NewFlightRecorder creates a recorder for node writing dumps to
// dir/flight-<node>.json. capacity <= 0 defaults to 512 records.
func NewFlightRecorder(node, dir string, capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 512
	}
	return &FlightRecorder{
		node:           node,
		path:           filepath.Join(dir, "flight-"+node+".json"),
		recs:           make([]FlightRecord, capacity),
		stormWindow:    2 * time.Second,
		stormThreshold: 8,
	}
}

// SetSources attaches optional context providers: the model clock, a
// histogram snapshot source (for last-delta capture), and a stats
// snapshot source. Any may be nil.
func (f *FlightRecorder) SetSources(modelNow func() time.Duration, hists func() map[string]trace.HistSnapshot, stats func() api.RuntimeStats) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.modelNow = modelNow
	f.hists = hists
	f.stats = stats
}

// Path returns the dump destination.
func (f *FlightRecorder) Path() string { return f.path }

// Dumps returns how many dumps have been written.
func (f *FlightRecorder) Dumps() int64 { return f.dumps.Load() }

// Note appends a record to the ring. kind "fence" and "breaker-trip"
// contribute to storm detection: a threshold crossing inside the storm
// window triggers an asynchronous dump (at most once per window).
func (f *FlightRecorder) Note(kind string, ctx int64, device int, detail string) {
	if f == nil {
		return
	}
	now := time.Now()
	f.mu.Lock()
	f.seq++
	rec := FlightRecord{Seq: f.seq, Wall: now, Kind: kind, Ctx: ctx, Device: device, Detail: detail}
	if f.modelNow != nil {
		rec.Model = f.modelNow()
	}
	f.recs[f.head] = rec
	f.head = (f.head + 1) % len(f.recs)
	if f.n < len(f.recs) {
		f.n++
	}
	storm := false
	if kind == "fence" || kind == "breaker-trip" {
		cut := now.Add(-f.stormWindow)
		times := f.stormTimes[:0]
		for _, t := range f.stormTimes {
			if t.After(cut) {
				times = append(times, t)
			}
		}
		f.stormTimes = append(times, now)
		if len(f.stormTimes) >= f.stormThreshold && now.Sub(f.stormFired) > f.stormWindow {
			f.stormFired = now
			storm = true
		}
	}
	f.mu.Unlock()
	if storm {
		go f.Dump(kind + "-storm")
	}
}

// snapshotLocked renders the ring oldest-first. Caller holds f.mu.
func (f *FlightRecorder) snapshotLocked() []FlightRecord {
	out := make([]FlightRecord, 0, f.n)
	start := f.head - f.n
	if start < 0 {
		start += len(f.recs)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.recs[(start+i)%len(f.recs)])
	}
	return out
}

// Dump writes the black box to disk atomically and returns the path.
// Histogram deltas are relative to the previous dump, so consecutive
// dumps describe disjoint intervals.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	d := FlightDump{
		Schema:  FlightSchema,
		Node:    f.node,
		Reason:  reason,
		Wall:    time.Now(),
		Seq:     f.seq,
		Records: f.snapshotLocked(),
	}
	hists := f.hists
	stats := f.stats
	prev := f.lastHist
	f.mu.Unlock()

	if hists != nil {
		cur := hists()
		d.Hists = make(map[string]trace.HistSnapshot, len(cur))
		for k, s := range cur {
			d.Hists[k] = s.Delta(prev[k])
		}
		f.mu.Lock()
		f.lastHist = cur
		f.mu.Unlock()
	}
	if stats != nil {
		s := stats()
		d.Stats = &s
	}

	buf, err := json.MarshalIndent(&d, "", " ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(filepath.Dir(f.path), 0o755); err != nil {
		return "", err
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, f.path); err != nil {
		return "", err
	}
	f.dumps.Add(1)
	return f.path, nil
}

// WrapCrash chains the recorder in front of a faultinject OnCrash
// action: the black box hits the disk before the process kills itself,
// so an armed crash point always leaves a post-mortem.
func (f *FlightRecorder) WrapCrash(next func()) func() {
	return func() {
		if f != nil {
			f.Dump("crash-point")
		}
		if next != nil {
			next()
		}
	}
}

// Run flushes the box to disk every interval until stop closes — the
// belt-and-braces trigger that makes even an external SIGKILL (no
// in-process warning at all) leave a recent dump behind.
func (f *FlightRecorder) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			f.Dump("shutdown")
			return
		case <-t.C:
			f.Dump("periodic")
		}
	}
}

// ReadFlightDump parses a dump file, validating the schema.
func ReadFlightDump(path string) (*FlightDump, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d FlightDump
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("flight dump %s: %w", path, err)
	}
	if d.Schema != FlightSchema {
		return nil, fmt.Errorf("flight dump %s: schema %q, want %q", path, d.Schema, FlightSchema)
	}
	return &d, nil
}
