package obs

import (
	"sync"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/trace"
)

// Objective is one tenant's service-level objective. Zero fields
// disable the corresponding check, so a tenant can declare a latency
// objective without an error-ratio one.
type Objective struct {
	Tenant string `json:"tenant"`
	// LaunchP99NS: at least 99% of the tenant's kernel launches must
	// complete within this many model nanoseconds.
	LaunchP99NS int64 `json:"launch_p99_ns,omitempty"`
	// MaxErrorRatio: at most this fraction of the tenant's calls may
	// fail (errors + quota rejects over calls).
	MaxErrorRatio float64 `json:"max_error_ratio,omitempty"`
}

// SLOStatus is the evaluated state of one tenant/kind pair, served at
// /slo and embedded in burn-rate events.
type SLOStatus struct {
	Tenant string `json:"tenant"`
	// Kind is "launch_p99" or "error_ratio".
	Kind string `json:"kind"`
	// Objective echoes the declared target: nanoseconds for
	// launch_p99, a ratio for error_ratio.
	Objective float64 `json:"objective"`
	// ShortBurn / LongBurn are the burn rates over the two windows:
	// the fraction of the error budget consumed per unit budget — 1.0
	// means burning exactly at the objective's allowance, >1 means the
	// budget is shrinking.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	// ShortWindowS / LongWindowS are the window lengths in wall
	// seconds.
	ShortWindowS float64 `json:"short_window_s"`
	LongWindowS  float64 `json:"long_window_s"`
	// Breaching is the multi-window alert state: both windows burning
	// above the threshold.
	Breaching bool `json:"breaching"`
	// Current observed values over the short window, for operators.
	P99NS      int64   `json:"p99_ns,omitempty"`
	ErrorRatio float64 `json:"error_ratio,omitempty"`
}

// SLOEvent is published when a tenant's alert state transitions. It is
// pushed onto the ctrlplane /events SSE stream.
type SLOEvent struct {
	Status SLOStatus `json:"status"`
	// Wall is the wall-clock evaluation time.
	Wall time.Time `json:"wall"`
}

// sloSample is one timestamped usage snapshot in the evaluation ring.
type sloSample struct {
	at    time.Time
	usage map[string]api.TenantUsage
}

// SLOEngine evaluates per-tenant objectives as multi-window burn rates
// over cumulative usage snapshots: each Tick records a snapshot, diffs
// it against the samples closest to now-shortWindow and
// now-longWindow (HistSnapshot.Delta — restart-safe), and computes how
// fast each tenant is consuming its error budget. An alert fires only
// when BOTH windows burn above the threshold — the classic
// multi-window guard against paging on a blip — and a resolve fires
// when both drop back under.
type SLOEngine struct {
	mu         sync.Mutex
	now        func() time.Time
	objectives func() []Objective
	usage      func() map[string]api.TenantUsage
	publish    func(SLOEvent)

	shortWin, longWin time.Duration
	threshold         float64

	ring     []sloSample
	breached map[string]bool // "tenant/kind" -> alerting
	last     []SLOStatus
}

// SLOEngineOptions configures an engine; zero fields get defaults.
type SLOEngineOptions struct {
	// Objectives returns the currently declared objectives (typically
	// read through the ctrlplane store).
	Objectives func() []Objective
	// Usage returns the cumulative per-tenant usage to evaluate —
	// node-local or a cluster rollup.
	Usage func() map[string]api.TenantUsage
	// Publish receives alert-state transitions; may be nil.
	Publish func(SLOEvent)
	// ShortWindow / LongWindow default to 1m / 5m wall time.
	ShortWindow, LongWindow time.Duration
	// Threshold is the burn rate both windows must exceed to breach;
	// defaults to 2 (budget gone in half the period).
	Threshold float64
	// Now defaults to time.Now.
	Now func() time.Time
}

// NewSLOEngine builds an engine. Objectives and Usage are required.
func NewSLOEngine(opts SLOEngineOptions) *SLOEngine {
	e := &SLOEngine{
		now:        opts.Now,
		objectives: opts.Objectives,
		usage:      opts.Usage,
		publish:    opts.Publish,
		shortWin:   opts.ShortWindow,
		longWin:    opts.LongWindow,
		threshold:  opts.Threshold,
		breached:   make(map[string]bool),
	}
	if e.now == nil {
		e.now = time.Now
	}
	if e.shortWin <= 0 {
		e.shortWin = time.Minute
	}
	if e.longWin <= e.shortWin {
		e.longWin = 5 * e.shortWin
	}
	if e.threshold <= 0 {
		e.threshold = 2
	}
	return e
}

// Run ticks the engine every interval until stop closes.
func (e *SLOEngine) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.Tick()
		}
	}
}

// Tick samples current usage, evaluates every objective, publishes
// transitions, and retains the new status set for Status().
func (e *SLOEngine) Tick() []SLOStatus {
	now := e.now()
	cur := sloSample{at: now, usage: e.usage()}

	e.mu.Lock()
	defer e.mu.Unlock()

	e.ring = append(e.ring, cur)
	// Retain one sample older than the long window so a full-length
	// delta stays computable; drop anything older than that.
	cutoff := now.Add(-e.longWin)
	drop := 0
	for drop < len(e.ring)-1 && !e.ring[drop+1].at.After(cutoff) {
		drop++
	}
	e.ring = e.ring[drop:]

	short := e.sampleBefore(now.Add(-e.shortWin))
	long := e.sampleBefore(cutoff)

	var out []SLOStatus
	for _, obj := range e.objectives() {
		for _, st := range e.eval(obj, cur, short, long) {
			key := st.Tenant + "/" + st.Kind
			was := e.breached[key]
			if st.Breaching != was {
				e.breached[key] = st.Breaching
				if e.publish != nil {
					e.publish(SLOEvent{Status: st, Wall: now})
				}
			}
			out = append(out, st)
		}
	}
	e.last = out
	return out
}

// Status returns the most recently evaluated statuses.
func (e *SLOEngine) Status() []SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]SLOStatus(nil), e.last...)
}

// sampleBefore returns the newest ring sample at or before t, falling
// back to the oldest sample (a shorter-than-requested window during
// warm-up beats no window at all).
func (e *SLOEngine) sampleBefore(t time.Time) sloSample {
	if len(e.ring) == 0 {
		return sloSample{}
	}
	best := e.ring[0]
	for _, s := range e.ring[1:] {
		if s.at.After(t) {
			break
		}
		best = s
	}
	return best
}

// eval computes the status rows for one objective against the current
// sample and the two window anchors.
func (e *SLOEngine) eval(obj Objective, cur, short, long sloSample) []SLOStatus {
	var out []SLOStatus
	cu := cur.usage[obj.Tenant]
	if obj.LaunchP99NS > 0 {
		sBurn, p99 := latencyBurn(cu, short.usage[obj.Tenant], obj.LaunchP99NS)
		lBurn, _ := latencyBurn(cu, long.usage[obj.Tenant], obj.LaunchP99NS)
		st := SLOStatus{
			Tenant: obj.Tenant, Kind: "launch_p99",
			Objective: float64(obj.LaunchP99NS),
			ShortBurn: sBurn, LongBurn: lBurn,
			ShortWindowS: e.shortWin.Seconds(), LongWindowS: e.longWin.Seconds(),
			Breaching: sBurn > e.threshold && lBurn > e.threshold,
			P99NS:     p99,
		}
		out = append(out, st)
	}
	if obj.MaxErrorRatio > 0 {
		sBurn, ratio := errorBurn(cu, short.usage[obj.Tenant], obj.MaxErrorRatio)
		lBurn, _ := errorBurn(cu, long.usage[obj.Tenant], obj.MaxErrorRatio)
		st := SLOStatus{
			Tenant: obj.Tenant, Kind: "error_ratio",
			Objective: obj.MaxErrorRatio,
			ShortBurn: sBurn, LongBurn: lBurn,
			ShortWindowS: e.shortWin.Seconds(), LongWindowS: e.longWin.Seconds(),
			Breaching:  sBurn > e.threshold && lBurn > e.threshold,
			ErrorRatio: ratio,
		}
		out = append(out, st)
	}
	return out
}

// latencyBurn computes the burn rate of a "p99 <= objective" SLO over
// the window [prev, cur]: the fraction of launches in the window that
// exceeded the objective, divided by the 1% budget. Also returns the
// window's observed p99. The log2 buckets make "exceeded" conservative
// by up to 2x (a bucket straddling the objective counts as violating);
// that bias is stable, documented, and in the operator's favour.
func latencyBurn(cur, prev api.TenantUsage, objectiveNS int64) (burn float64, p99 int64) {
	d := cur.Launch.Delta(prev.Launch)
	if d.Count <= 0 {
		return 0, 0
	}
	var violating int64
	for i, c := range d.Buckets {
		if trace.BucketBound(i) > objectiveNS {
			violating += c
		}
	}
	frac := float64(violating) / float64(d.Count)
	return frac / 0.01, d.Quantile(0.99)
}

// errorBurn computes the burn rate of an error-ratio SLO over the
// window: (errors + quota rejects) / calls, divided by the allowed
// ratio. Quota rejects count against the tenant-facing error budget —
// a shed call failed from the client's point of view.
func errorBurn(cur, prev api.TenantUsage, maxRatio float64) (burn float64, ratio float64) {
	calls := cur.Calls - prev.Calls
	if calls <= 0 {
		return 0, 0
	}
	bad := (cur.Errors - prev.Errors) + (cur.QuotaRejects - prev.QuotaRejects)
	if bad < 0 {
		bad = 0
	}
	ratio = float64(bad) / float64(calls)
	return ratio / maxRatio, ratio
}
