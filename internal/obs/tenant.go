// Package obs is the cluster-scoped observability layer: per-tenant
// attribution of runtime work, fleet-wide aggregation of the mergeable
// metric bundles every node already exposes, a burn-rate SLO engine
// over per-tenant histogram deltas, and a crash flight recorder.
//
// The attribution design rides the existing lock-free histogram
// discipline: hot paths (launch, swap) touch only atomic counters and
// lock-free Histogram.Observe on a *TenantMetrics pointer the runtime
// caches per context at admission time, so attribution adds no locks
// and no allocations to the launch or swap paths. The only lock in
// this file guards tenant-bundle creation, which happens once per
// tenant at admission — never per call.
package obs

import (
	"sync"
	"sync/atomic"

	"gvrt/internal/api"
	"gvrt/internal/trace"
)

// TenantMetrics is the always-on attribution bundle for one tenant.
// All mutators are a single atomic add (or a lock-free histogram
// observe); the zero value is unusable — get bundles from a Registry.
type TenantMetrics struct {
	sessions        atomic.Int64
	calls           atomic.Int64
	errors          atomic.Int64
	launches        atomic.Int64
	gpuTimeNS       atomic.Int64
	queueWaitNS     atomic.Int64
	swapBytes       atomic.Int64
	swapOps         atomic.Int64
	checkpointBytes atomic.Int64
	migrationBytes  atomic.Int64
	dedupSavedBytes atomic.Int64
	fenceRejections atomic.Int64
	quotaRejects    atomic.Int64

	// Launch and QueueWait are the tenant-scoped latency histograms
	// (model-time ns). Exported so the runtime can Observe directly —
	// Histogram.Observe is lock-free.
	Launch    trace.Histogram
	QueueWait trace.Histogram
}

// SessionJoin / SessionLeave track attached contexts.
func (m *TenantMetrics) SessionJoin()  { m.sessions.Add(1) }
func (m *TenantMetrics) SessionLeave() { m.sessions.Add(-1) }

// AddCall counts one served call and whether it errored.
func (m *TenantMetrics) AddCall(failed bool) {
	m.calls.Add(1)
	if failed {
		m.errors.Add(1)
	}
}

// AddGPUTime attributes one successfully executed kernel launch and
// the modeled GPU execution time it consumed. Launch latency is
// observed separately into the Launch histogram (which also sees
// failed attempts, mirroring the runtime-wide histogram).
func (m *TenantMetrics) AddGPUTime(gpuNS int64) {
	m.launches.Add(1)
	m.gpuTimeNS.Add(gpuNS)
}

// AddQueueWait attributes time parked waiting for a free vGPU.
func (m *TenantMetrics) AddQueueWait(ns int64) {
	m.queueWaitNS.Add(ns)
	m.QueueWait.Observe(ns)
}

// AddFenceRejection counts a mutating call rejected with ErrFenced.
func (m *TenantMetrics) AddFenceRejection() { m.fenceRejections.Add(1) }

// AddQuotaReject counts an admission or allocation the tenant's quota
// refused — the per-tenant face of load shedding.
func (m *TenantMetrics) AddQuotaReject() { m.quotaRejects.Add(1) }

// AddMigrationBytes attributes wire bytes shipped by a cross-node
// migration of one of the tenant's contexts.
func (m *TenantMetrics) AddMigrationBytes(n int64) { m.migrationBytes.Add(n) }

// Usage snapshots the bundle into its wire form.
func (m *TenantMetrics) Usage() api.TenantUsage {
	return api.TenantUsage{
		Sessions:        m.sessions.Load(),
		Calls:           m.calls.Load(),
		Errors:          m.errors.Load(),
		Launches:        m.launches.Load(),
		GPUTimeNS:       m.gpuTimeNS.Load(),
		QueueWaitNS:     m.queueWaitNS.Load(),
		SwapBytes:       m.swapBytes.Load(),
		SwapOps:         m.swapOps.Load(),
		CheckpointBytes: m.checkpointBytes.Load(),
		MigrationBytes:  m.migrationBytes.Load(),
		DedupSavedBytes: m.dedupSavedBytes.Load(),
		FenceRejections: m.fenceRejections.Load(),
		QuotaRejects:    m.quotaRejects.Load(),
		Launch:          m.Launch.Snapshot(),
		QueueWait:       m.QueueWait.Snapshot(),
	}
}

// Registry maps tenant names to their attribution bundles and context
// IDs to the bundle of the tenant they joined. Bundle creation takes
// the registry lock (cold: once per tenant); every per-context lookup
// used from swap paths goes through a sync.Map, which is lock-free for
// the steady-state read case.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*TenantMetrics
	byCtx   sync.Map // int64 ctx ID -> *TenantMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*TenantMetrics)}
}

// Tenant returns the bundle for name, creating it on first use.
// Bundles are never removed: a tenant's usage outlives its sessions,
// like any monotonic counter.
func (r *Registry) Tenant(name string) *TenantMetrics {
	r.mu.RLock()
	m := r.tenants[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.tenants[name]; m == nil {
		m = &TenantMetrics{}
		r.tenants[name] = m
	}
	return m
}

// BindCtx routes future per-context attribution (from layers below
// core, via trace.Tracer.Attr) to m.
func (r *Registry) BindCtx(ctxID int64, m *TenantMetrics) {
	r.byCtx.Store(ctxID, m)
}

// UnbindCtx removes a context's attribution route.
func (r *Registry) UnbindCtx(ctxID int64) {
	r.byCtx.Delete(ctxID)
}

// ObserveCtx is the trace.Tracer Attr sink: it attributes a quantity
// reported by a lower layer (memmgr) to the tenant whose context owns
// it. Contexts that never joined a tenant are simply not attributed.
// Lock-free: one sync.Map load plus one atomic add.
func (r *Registry) ObserveCtx(ctxID int64, kind trace.AttrKind, v int64) {
	mv, ok := r.byCtx.Load(ctxID)
	if !ok {
		return
	}
	m := mv.(*TenantMetrics)
	switch kind {
	case trace.AttrSwapBytes:
		m.swapBytes.Add(v)
	case trace.AttrSwapOps:
		m.swapOps.Add(v)
	case trace.AttrCheckpointBytes:
		m.checkpointBytes.Add(v)
	case trace.AttrDedupSaved:
		m.dedupSavedBytes.Add(v)
	}
}

// Snapshot renders every tenant's usage, keyed by name.
func (r *Registry) Snapshot() map[string]api.TenantUsage {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.tenants) == 0 {
		return nil
	}
	out := make(map[string]api.TenantUsage, len(r.tenants))
	for name, m := range r.tenants {
		out[name] = m.Usage()
	}
	return out
}
