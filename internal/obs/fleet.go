package obs

import (
	"sort"
	"sync"

	"gvrt/internal/api"
	"gvrt/internal/trace"
)

// ClusterStats is the head-node rollup: each node's snapshot plus the
// merged cluster-wide view. Merging rides the PR-4 design — counters
// sum, histograms merge bucket-wise, per-tenant bundles merge
// field-wise — so the cluster view has exactly the same shape as a
// node view and every consumer (gvrt-top, /metrics) works unchanged.
type ClusterStats struct {
	// Nodes holds each reachable node's snapshot, keyed by node name.
	Nodes map[string]api.RuntimeStats `json:"nodes"`
	// Merged is the cluster-wide aggregate. Devices is left per-node
	// (see Nodes); all counters, histograms and tenant bundles are
	// summed/merged.
	Merged api.RuntimeStats `json:"merged"`
	// Unreachable maps node names that failed to respond to the fetch
	// error, so a partial rollup is visibly partial.
	Unreachable map[string]string `json:"unreachable,omitempty"`
}

// NodeNames returns the reachable node names, sorted.
func (c ClusterStats) NodeNames() []string {
	out := make([]string, 0, len(c.Nodes))
	for n := range c.Nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MergeTenantUsage sums two per-tenant bundles.
func MergeTenantUsage(a, b api.TenantUsage) api.TenantUsage {
	return api.TenantUsage{
		Sessions:        a.Sessions + b.Sessions,
		Calls:           a.Calls + b.Calls,
		Errors:          a.Errors + b.Errors,
		Launches:        a.Launches + b.Launches,
		GPUTimeNS:       a.GPUTimeNS + b.GPUTimeNS,
		QueueWaitNS:     a.QueueWaitNS + b.QueueWaitNS,
		SwapBytes:       a.SwapBytes + b.SwapBytes,
		SwapOps:         a.SwapOps + b.SwapOps,
		CheckpointBytes: a.CheckpointBytes + b.CheckpointBytes,
		MigrationBytes:  a.MigrationBytes + b.MigrationBytes,
		DedupSavedBytes: a.DedupSavedBytes + b.DedupSavedBytes,
		FenceRejections: a.FenceRejections + b.FenceRejections,
		QuotaRejects:    a.QuotaRejects + b.QuotaRejects,
		Launch:          a.Launch.Merge(b.Launch),
		QueueWait:       a.QueueWait.Merge(b.QueueWait),
	}
}

// MergeStats folds src into dst and returns the sum: counters add,
// histograms merge, tenants merge by name. Devices are deliberately
// not concatenated — a merged stats view reports cluster totals, and
// per-device detail stays with the per-node snapshots.
func MergeStats(dst, src api.RuntimeStats) api.RuntimeStats {
	out := dst
	out.CallsServed += src.CallsServed
	out.Binds += src.Binds
	out.InterAppSwaps += src.InterAppSwaps
	out.IntraAppSwaps += src.IntraAppSwaps
	out.SwapOps += src.SwapOps
	out.SwapBytes += src.SwapBytes
	out.CheckpointBytes += src.CheckpointBytes
	out.PrefetchIssued += src.PrefetchIssued
	out.PrefetchHits += src.PrefetchHits
	out.PrefetchSkipped += src.PrefetchSkipped
	out.DedupHits += src.DedupHits
	out.DedupSavedBytes += src.DedupSavedBytes
	out.CowBreaks += src.CowBreaks
	out.Migrations += src.Migrations
	out.MigrationsStarted += src.MigrationsStarted
	out.MigrationsCompleted += src.MigrationsCompleted
	out.MigrationsAborted += src.MigrationsAborted
	out.FenceRejections += src.FenceRejections
	out.LeaseRenewals += src.LeaseRenewals
	out.Recoveries += src.Recoveries
	out.Replays += src.Replays
	out.DeviceFailures += src.DeviceFailures
	out.Offloaded += src.Offloaded
	out.UnbindRetries += src.UnbindRetries
	out.BreakerTrips += src.BreakerTrips
	out.Readmissions += src.Readmissions
	out.RetriesSpent += src.RetriesSpent
	out.Sheds += src.Sheds
	out.GPUTimeNS += src.GPUTimeNS
	out.QueueDepth += src.QueueDepth
	out.LiveContexts += src.LiveContexts
	out.Devices = nil

	if len(dst.Histograms) > 0 || len(src.Histograms) > 0 {
		h := make(map[string]trace.HistSnapshot, len(dst.Histograms)+len(src.Histograms))
		for k, v := range dst.Histograms {
			h[k] = v
		}
		for k, v := range src.Histograms {
			h[k] = h[k].Merge(v)
		}
		out.Histograms = h
	}
	if len(dst.Tenants) > 0 || len(src.Tenants) > 0 {
		t := make(map[string]api.TenantUsage, len(dst.Tenants)+len(src.Tenants))
		for k, v := range dst.Tenants {
			t[k] = v
		}
		for k, v := range src.Tenants {
			t[k] = MergeTenantUsage(t[k], v)
		}
		out.Tenants = t
	}
	return out
}

// Collector is the head-node fleet aggregator. The local node's stats
// come from a direct snapshot func; peers are fetched through
// caller-provided closures (gvrtd dials the peer's wire transport and
// issues a StatsCall — the same transport sessions already ride).
type Collector struct {
	mu    sync.Mutex
	self  string
	local func() api.RuntimeStats
	peers map[string]func() (api.RuntimeStats, error)
}

// NewCollector returns a collector whose local node is named self.
func NewCollector(self string, local func() api.RuntimeStats) *Collector {
	return &Collector{self: self, local: local, peers: make(map[string]func() (api.RuntimeStats, error))}
}

// AddPeer registers (or replaces) a peer fetcher under name.
func (c *Collector) AddPeer(name string, fetch func() (api.RuntimeStats, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers[name] = fetch
}

// RemovePeer forgets a peer.
func (c *Collector) RemovePeer(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.peers, name)
}

// Peers returns the registered peer names, sorted.
func (c *Collector) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for n := range c.peers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Collect fans out to every peer concurrently, merges the responses
// with the local snapshot, and reports unreachable peers by error
// string. A cluster with failed peers still yields a (partial) rollup.
func (c *Collector) Collect() ClusterStats {
	c.mu.Lock()
	names := make([]string, 0, len(c.peers))
	fetchers := make([]func() (api.RuntimeStats, error), 0, len(c.peers))
	for n, f := range c.peers {
		names = append(names, n)
		fetchers = append(fetchers, f)
	}
	self, local := c.self, c.local
	c.mu.Unlock()

	out := ClusterStats{Nodes: make(map[string]api.RuntimeStats, len(names)+1)}
	type fetched struct {
		name  string
		stats api.RuntimeStats
		err   error
	}
	ch := make(chan fetched, len(names))
	for i := range names {
		go func(name string, fetch func() (api.RuntimeStats, error)) {
			s, err := fetch()
			ch <- fetched{name, s, err}
		}(names[i], fetchers[i])
	}
	if local != nil {
		out.Nodes[self] = local()
	}
	for range names {
		f := <-ch
		if f.err != nil {
			if out.Unreachable == nil {
				out.Unreachable = make(map[string]string)
			}
			out.Unreachable[f.name] = f.err.Error()
			continue
		}
		out.Nodes[f.name] = f.stats
	}
	for _, name := range out.NodeNames() {
		out.Merged = MergeStats(out.Merged, out.Nodes[name])
	}
	return out
}
