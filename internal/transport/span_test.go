package transport

import (
	"testing"

	"gvrt/internal/api"
)

// TestWithSpanOverTCP proves the span-carrying wrapper survives the gob
// wire intact: the server sees a WithSpan whose Unwrap yields the
// original call and parent ID. This is the mechanism by which an
// offload hop propagates its causal parent to the peer.
func TestWithSpanOverTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	got := make(chan api.Call, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			return
		}
		call, err := s.Recv()
		if err != nil {
			return
		}
		got <- call
		s.Reply(api.Reply{})
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inner := api.LaunchCall{Kernel: "k", Repeat: 3}
	if _, err := c.Call(api.WithSpan{Parent: 42, Call: inner}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	w, ok := (<-got).(api.WithSpan)
	if !ok {
		t.Fatal("server did not receive a WithSpan")
	}
	call, parent := w.Unwrap()
	if parent != 42 {
		t.Errorf("parent = %d, want 42", parent)
	}
	lc, ok := call.(api.LaunchCall)
	if !ok || lc.Kernel != "k" || lc.Repeat != 3 {
		t.Errorf("unwrapped call = %#v", call)
	}
	// Nested wrappers unwrap to the innermost call, outermost parent.
	call, parent = api.WithSpan{Parent: 7, Call: api.WithSpan{Parent: 9, Call: inner}}.Unwrap()
	if parent != 7 {
		t.Errorf("nested parent = %d, want 7", parent)
	}
	if _, ok := call.(api.LaunchCall); !ok {
		t.Errorf("nested unwrap = %#v", call)
	}
}
