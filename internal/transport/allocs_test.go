package transport

import (
	"net"
	"testing"

	"gvrt/internal/api"
)

// TestCodecAllocsPerCall pins the steady-state allocation cost of one
// gob call/reply round trip through the pooled envelope codec
// (tcp.go). The budget is deliberately above today's measured value —
// the test exists to catch the envelope pooling silently regressing
// (e.g. a new per-call allocation on the frame path), not to chase
// single-alloc noise.
func TestCodecAllocsPerCall(t *testing.T) {
	cc, sc := net.Pipe()
	client := NewClientConn(cc)
	server := NewServerConn(sc)
	defer client.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := server.Recv(); err != nil {
				return
			}
			if err := server.Reply(api.Reply{Code: api.Success}); err != nil {
				return
			}
		}
	}()

	call := api.LaunchCall{Kernel: "k", PtrArgs: []api.DevPtr{0x1000}, Scalars: []uint64{7}}
	// Warm the gob type registry and the envelope pools: the first calls
	// on a stream exchange type descriptors and are not steady state.
	for i := 0; i < 10; i++ {
		if _, err := client.Call(call); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := client.Call(call); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("codec round trip: %.1f allocs/call", avg)
	const budget = 20
	if avg > budget {
		t.Errorf("codec round trip allocates %.1f objects/call, budget %d", avg, budget)
	}
	_ = client.Close()
	<-done
}
