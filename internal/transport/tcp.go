package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"gvrt/internal/api"
)

// Envelope structs are pooled across calls and connections: the codec
// frames every call and reply, so at daemon scale the per-call envelope
// garbage is pure overhead. Pooled values are Reset before decode (gob
// merges into non-zero fields) and before Put (so a pooled reply never
// pins a caller's Data slice).
var (
	envPool      = sync.Pool{New: func() any { return new(api.Envelope) }}
	replyEnvPool = sync.Pool{New: func() any { return new(api.ReplyEnvelope) }}
)

// tcpConn is the client side of a TCP connection, carrying gob-encoded
// envelopes. Calls are serialised by a mutex: a connection belongs to a
// single application thread and carries one call at a time.
type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	seq  uint64
	dead bool
}

// Dial connects to a runtime daemon at addr (host:port).
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewClientConn(c), nil
}

// NewClientConn wraps an established net.Conn as the client side of a
// connection.
func NewClientConn(c net.Conn) Conn {
	return &tcpConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (t *tcpConn) Call(call api.Call) (api.Reply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead {
		return api.Reply{}, ErrClosed
	}
	t.seq++
	env := envPool.Get().(*api.Envelope)
	env.Seq, env.Call = t.seq, call
	err := t.enc.Encode(env)
	env.Reset()
	envPool.Put(env)
	if err != nil {
		t.dead = true
		return api.Reply{}, fmt.Errorf("transport: send: %w", err)
	}
	re := replyEnvPool.Get().(*api.ReplyEnvelope)
	re.Reset()
	if err := t.dec.Decode(re); err != nil {
		replyEnvPool.Put(re)
		t.dead = true
		return api.Reply{}, fmt.Errorf("transport: recv: %w", err)
	}
	seq, reply := re.Seq, re.Reply
	re.Reset()
	replyEnvPool.Put(re)
	if seq != t.seq {
		t.dead = true
		return api.Reply{}, fmt.Errorf("transport: reply sequence %d for call %d", seq, t.seq)
	}
	return reply, nil
}

func (t *tcpConn) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dead = true
	return t.c.Close()
}

// tcpServerConn is the daemon side of a TCP connection.
type tcpServerConn struct {
	c       net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	lastSeq uint64
}

// NewServerConn wraps an accepted net.Conn as the runtime side of a
// connection.
func NewServerConn(c net.Conn) ServerConn {
	return &tcpServerConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (t *tcpServerConn) Recv() (api.Call, error) {
	env := envPool.Get().(*api.Envelope)
	env.Reset()
	if err := t.dec.Decode(env); err != nil {
		envPool.Put(env)
		return nil, ErrClosed
	}
	t.lastSeq = env.Seq
	call := env.Call
	env.Reset()
	envPool.Put(env)
	return call, nil
}

func (t *tcpServerConn) Reply(r api.Reply) error {
	re := replyEnvPool.Get().(*api.ReplyEnvelope)
	re.Seq, re.Reply = t.lastSeq, r
	err := t.enc.Encode(re)
	re.Reset()
	replyEnvPool.Put(re)
	if err != nil {
		return ErrClosed
	}
	return nil
}

func (t *tcpServerConn) Close() error { return t.c.Close() }

// Listener accepts runtime connections over TCP.
type Listener struct {
	l net.Listener
}

// Listen starts accepting connections on addr (host:port; use ":0" for
// an ephemeral port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the listener's address, e.g. to advertise an ephemeral
// port.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (ServerConn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewServerConn(c), nil
}

// Close stops the listener; a blocked Accept returns an error.
func (l *Listener) Close() error { return l.l.Close() }
