// Package transport carries intercepted CUDA calls between an
// application thread (frontend) and a runtime daemon.
//
// The paper's prototype uses the socket framework of the gVirtuS
// project: af_unix sockets natively and VM-sockets inside virtual
// machines (§3). This package offers the same synchronous call/reply
// channel in two flavours: an in-process pipe (the af_unix equivalent
// when application and runtime share a process, used by tests, examples
// and benchmarks) and a TCP transport (the cross-VM / cross-node
// equivalent, used by the daemons and by inter-node offloading).
//
// A connection corresponds to exactly one application thread, carries
// one call at a time, and stays open for the thread's lifetime — the
// unit the paper's connection manager enqueues and the dispatcher
// schedules.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"gvrt/internal/api"
)

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is the application (frontend) side of a connection: a strictly
// synchronous call/reply channel.
type Conn interface {
	// Call sends one CUDA call and blocks for its reply.
	Call(api.Call) (api.Reply, error)
	// Close tears down the connection. The server observes EOF.
	Close() error
}

// ServerConn is the runtime side of a connection.
type ServerConn interface {
	// Recv blocks for the next call. It returns ErrClosed once the
	// client has closed the connection and all calls are drained.
	Recv() (api.Call, error)
	// Reply answers the call most recently returned by Recv.
	Reply(api.Reply) error
	// Close tears down the connection; a blocked client call observes
	// an ErrConnectionClosed reply.
	Close() error
}

// pipe implements an in-process connection with a pair of unbuffered
// channels: the rendezvous gives exactly the synchronous semantics of
// the socket RPC.
type pipe struct {
	calls   chan api.Call
	replies chan api.Reply
	done    chan struct{}
	once    sync.Once
}

// Pipe creates a connected in-process (client, server) pair.
func Pipe() (Conn, ServerConn) {
	p := &pipe{
		calls:   make(chan api.Call),
		replies: make(chan api.Reply),
		done:    make(chan struct{}),
	}
	return (*pipeClient)(wrap(p)), (*pipeServer)(wrap(p))
}

// wrap is the identity; it exists so the two views share the struct
// while having distinct method sets.
func wrap(p *pipe) *pipe { return p }

type pipeClient pipe

func (c *pipeClient) Call(call api.Call) (api.Reply, error) {
	p := (*pipe)(c)
	select {
	case p.calls <- call:
	case <-p.done:
		return api.Reply{}, ErrClosed
	}
	select {
	case r := <-p.replies:
		return r, nil
	case <-p.done:
		return api.Reply{}, ErrClosed
	}
}

func (c *pipeClient) Close() error {
	(*pipe)(c).close()
	return nil
}

type pipeServer pipe

func (s *pipeServer) Recv() (api.Call, error) {
	p := (*pipe)(s)
	select {
	case call := <-p.calls:
		return call, nil
	case <-p.done:
		return nil, ErrClosed
	}
}

func (s *pipeServer) Reply(r api.Reply) error {
	p := (*pipe)(s)
	select {
	case p.replies <- r:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

func (s *pipeServer) Close() error {
	(*pipe)(s).close()
	return nil
}

func (p *pipe) close() { p.once.Do(func() { close(p.done) }) }

// String diagnostics.
func (c *pipeClient) String() string { return "pipe-client" }
func (s *pipeServer) String() string { return fmt.Sprintf("pipe-server(%p)", s) }
