package transport

import (
	"time"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
)

// faultConn is a Conn that consults a fault-plane hook before every
// call, so transport failures (drop, delay, spurious errors, cluster
// partitions) are injected at the same layer where the real ones would
// surface.
type faultConn struct {
	inner Conn
	hook  *faultinject.Hook
	sleep func(time.Duration)
}

// WithFaults wraps c so every Call first consults hook. A nil hook (or
// nil sleep with a delay decision) degrades gracefully: the wrapper
// forwards the call untouched. Drop decisions close the inner
// connection and return ErrClosed, exactly what a torn socket yields —
// callers already folding transport errors into ErrConnectionClosed
// need no changes. Delay decisions stall in model time via sleep.
func WithFaults(c Conn, hook *faultinject.Hook, sleep func(time.Duration)) Conn {
	if hook == nil {
		return c
	}
	return &faultConn{inner: c, hook: hook, sleep: sleep}
}

func (f *faultConn) Call(call api.Call) (api.Reply, error) {
	d := f.hook.Check()
	if d.Delay > 0 && f.sleep != nil {
		f.sleep(d.Delay)
	}
	if d.Drop {
		f.inner.Close()
		return api.Reply{}, ErrClosed
	}
	if d.Err != nil {
		return api.Reply{}, d.Err
	}
	return f.inner.Call(call)
}

func (f *faultConn) Close() error { return f.inner.Close() }
