package transport

import (
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
)

// testScale keeps deadline waits to microseconds of wall time.
const deadlineTestScale = 1e-6

func TestDeadlineFastCallUnaffected(t *testing.T) {
	clock := sim.NewClock(deadlineTestScale)
	c, s := Pipe()
	dc := WithDeadline(c, clock, time.Hour)
	go func() {
		call, err := s.Recv()
		if err != nil {
			return
		}
		if _, ok := call.(api.PingCall); !ok {
			t.Errorf("server received %T, want SyncCall", call)
		}
		_ = s.Reply(api.Reply{})
	}()
	r, err := dc.Call(api.PingCall{})
	if err != nil {
		t.Fatalf("fast call failed under a generous deadline: %v", err)
	}
	if r.Code != api.Success {
		t.Fatalf("reply code = %v, want success", r.Code)
	}
}

func TestDeadlineExpiryTearsConnDown(t *testing.T) {
	clock := sim.NewClock(deadlineTestScale)
	c, s := Pipe()
	dc := WithDeadline(c, clock, 50*time.Millisecond)

	// A server that receives the call and then never replies: the model
	// of a partitioned or wedged peer.
	served := make(chan struct{})
	go func() {
		_, _ = s.Recv()
		close(served)
		// no Reply — ever
	}()

	_, err := dc.Call(api.PingCall{})
	if api.Code(err) != api.ErrDeadlineExceeded {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	<-served

	// Expiry must have closed the underlying connection (socket-timeout
	// semantics): the stream cannot be reused out of sync.
	if _, err := c.Call(api.PingCall{}); err == nil {
		t.Fatal("underlying conn still usable after deadline expiry")
	}
	if err := s.Reply(api.Reply{}); err == nil {
		t.Fatal("server side still usable after deadline expiry")
	}
}

func TestDeadlineDisabled(t *testing.T) {
	c, _ := Pipe()
	if got := WithDeadline(c, nil, time.Second); got != c {
		t.Fatal("nil clock should return the conn unchanged")
	}
	if got := WithDeadline(c, sim.NewClock(deadlineTestScale), 0); got != c {
		t.Fatal("non-positive deadline should return the conn unchanged")
	}
}

func TestServerDeadlineFastReplyUnaffected(t *testing.T) {
	clock := sim.NewClock(deadlineTestScale)
	c, s := Pipe()
	ds := WithServerDeadline(s, clock, time.Hour)

	got := make(chan error, 1)
	go func() {
		_, err := c.Call(api.PingCall{})
		got <- err
	}()
	if _, err := ds.Recv(); err != nil {
		t.Fatalf("Recv failed: %v", err)
	}
	if err := ds.Reply(api.Reply{}); err != nil {
		t.Fatalf("reply to a waiting client failed: %v", err)
	}
	if err := <-got; err != nil {
		t.Fatalf("client call failed: %v", err)
	}
}

func TestServerDeadlineBoundsReply(t *testing.T) {
	clock := sim.NewClock(deadlineTestScale)
	c, s := Pipe()
	ds := WithServerDeadline(s, clock, 50*time.Millisecond)

	// Nobody is waiting on the client side: the rendezvous reply can
	// never be collected, so the hand-off must expire, not wedge the
	// serving goroutine forever.
	if err := ds.Reply(api.Reply{}); api.Code(err) != api.ErrDeadlineExceeded {
		t.Fatalf("abandoned reply err = %v, want ErrDeadlineExceeded", err)
	}
	// Expiry closed the connection underneath.
	if _, err := c.Call(api.PingCall{}); err == nil {
		t.Fatal("client side still usable after server deadline expiry")
	}
}
