package transport

import (
	"errors"
	"sync"
	"testing"

	"gvrt/internal/api"
)

// echoServe answers every call with a canned reply derived from it.
func echoServe(t *testing.T, s ServerConn) {
	t.Helper()
	for {
		call, err := s.Recv()
		if err != nil {
			return
		}
		var r api.Reply
		switch c := call.(type) {
		case api.MallocCall:
			r = api.Reply{Ptr: api.DevPtr(c.Size)}
		case api.MemcpyDHCall:
			r = api.Reply{Data: make([]byte, c.Size)}
		case api.GetDeviceCountCall:
			r = api.Reply{Count: 4}
		default:
			r = api.Reply{Code: api.ErrInvalidValue}
		}
		if err := s.Reply(r); err != nil {
			return
		}
	}
}

func testConnBehaviour(t *testing.T, c Conn, s ServerConn) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); echoServe(t, s) }()

	r, err := c.Call(api.MallocCall{Size: 123})
	if err != nil {
		t.Fatalf("Call(Malloc): %v", err)
	}
	if r.Ptr != 123 {
		t.Errorf("Malloc reply Ptr = %d, want 123", r.Ptr)
	}
	r, err = c.Call(api.MemcpyDHCall{Size: 9})
	if err != nil || len(r.Data) != 9 {
		t.Errorf("MemcpyDH reply = %+v, %v", r, err)
	}
	r, err = c.Call(api.GetDeviceCountCall{})
	if err != nil || r.Count != 4 {
		t.Errorf("GetDeviceCount reply = %+v, %v", r, err)
	}
	r, err = c.Call(api.SynchronizeCall{})
	if err != nil || r.Code != api.ErrInvalidValue {
		t.Errorf("default reply = %+v, %v", r, err)
	}

	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg.Wait()

	if _, err := c.Call(api.SynchronizeCall{}); err == nil {
		t.Error("Call on closed conn should fail")
	}
}

func TestPipeConn(t *testing.T) {
	c, s := Pipe()
	testConnBehaviour(t, c, s)
}

func TestTCPConn(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	srvErr := make(chan error, 1)
	var srv ServerConn
	accepted := make(chan struct{})
	go func() {
		s, err := l.Accept()
		if err != nil {
			srvErr <- err
			close(accepted)
			return
		}
		srv = s
		close(accepted)
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	select {
	case err := <-srvErr:
		t.Fatal(err)
	default:
	}
	testConnBehaviour(t, c, srv)
}

func TestPipeServerCloseUnblocksClient(t *testing.T) {
	c, s := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(api.SynchronizeCall{})
		done <- err
	}()
	// Give the client a moment to park in Call, then slam the door.
	call, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if call.CallName() != "cudaDeviceSynchronize" {
		t.Errorf("recv = %s", call.CallName())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("client err = %v, want ErrClosed", err)
	}
	if _, err := s.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after Close err = %v, want ErrClosed", err)
	}
}

func TestTCPClientCloseUnblocksServer(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := Dial(l.Addr())
		if err != nil {
			return
		}
		c.Close()
	}()
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv on closed client err = %v, want ErrClosed", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		s, err := l.Accept()
		if err != nil {
			return
		}
		for {
			call, err := s.Recv()
			if err != nil {
				return
			}
			hd := call.(api.MemcpyHDCall)
			if err := s.Reply(api.Reply{Data: hd.Data}); err != nil {
				return
			}
		}
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	r, err := c.Call(api.MemcpyHDCall{Dst: 1, Data: payload})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Data) != len(payload) || r.Data[12345] != payload[12345] {
		t.Error("large payload mangled in transit")
	}
}

func TestPipeManySequentialCalls(t *testing.T) {
	c, s := Pipe()
	go echoServe(t, s)
	defer c.Close()
	for i := 0; i < 1000; i++ {
		r, err := c.Call(api.MallocCall{Size: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if r.Ptr != api.DevPtr(i) {
			t.Fatalf("call %d: Ptr = %d", i, r.Ptr)
		}
	}
}

func TestUnixConn(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/gvrt.sock"
	l, err := ListenUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	accepted := make(chan ServerConn, 1)
	go func() {
		s, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- s
	}()

	c, err := DialUnix(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	testConnBehaviour(t, c, srv)
}
