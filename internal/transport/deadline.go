package transport

import (
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
)

// This file implements the deadline guard of the resilience layer: a
// connection wrapper that bounds every synchronous operation against
// the model clock, so no call can hang past its deadline no matter what
// the other side (a partitioned peer, a wedged dispatcher) does.
//
// The transport is strictly synchronous — one call, one reply, in
// order. A wrapper that merely returned early on timeout would leave
// the abandoned reply in flight to satisfy the NEXT call, silently
// desynchronising the stream. Deadline expiry therefore tears the
// connection down, exactly like a socket receive-timeout followed by
// close: the abandoned inner operation observes ErrClosed, and the
// caller gets api.ErrDeadlineExceeded on a connection it must not
// reuse.

// deadlineWallGrace is the minimum WALL time an operation gets beyond
// its model deadline. At aggressive clock scales (1e-7 in tests) a
// model hour is mere wall microseconds — less than ordinary goroutine
// scheduling jitter — so a bare model deadline would misread a busy
// scheduler as a hang. A genuine hang still resolves within the grace;
// an operation that is merely slow to get scheduled does not lose its
// connection. At production clock scales the grace is far below any
// sane deadline and never engages.
const deadlineWallGrace = 250 * time.Millisecond

// deadlineConn bounds Call; see WithDeadline.
type deadlineConn struct {
	inner Conn
	clock *sim.Clock
	d     time.Duration
}

// WithDeadline wraps c so every Call completes within d of model time
// (plus a small wall-time grace; see deadlineWallGrace) or fails with
// api.ErrDeadlineExceeded, closing the connection. A nil clock or
// non-positive d returns c unchanged.
func WithDeadline(c Conn, clock *sim.Clock, d time.Duration) Conn {
	if clock == nil || d <= 0 {
		return c
	}
	return &deadlineConn{inner: c, clock: clock, d: d}
}

func (c *deadlineConn) Call(call api.Call) (api.Reply, error) {
	type outcome struct {
		r   api.Reply
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		r, err := c.inner.Call(call)
		ch <- outcome{r, err}
	}()
	select {
	case out := <-ch:
		return out.r, out.err
	case <-c.clock.After(c.d):
	}
	// Model deadline elapsed; grant the wall grace before declaring a
	// hang (scheduling jitter at tiny clock scales is not a hang).
	if rem := deadlineWallGrace - time.Since(start); rem > 0 {
		select {
		case out := <-ch:
			return out.r, out.err
		case <-time.After(rem):
		}
	}
	// Tear down: the reply (if it ever comes) must not leak into the
	// next call's slot.
	_ = c.inner.Close()
	return api.Reply{}, api.ErrDeadlineExceeded
}

func (c *deadlineConn) Close() error { return c.inner.Close() }

// deadlineServerConn bounds Recv and Reply; see WithServerDeadline.
type deadlineServerConn struct {
	inner ServerConn
	clock *sim.Clock
	d     time.Duration
}

// WithServerDeadline wraps sc so every Reply completes within d of
// model time or fails with api.ErrDeadlineExceeded, closing the
// connection. Recv stays unbounded: a server legitimately idles in Recv
// between an application's CPU phases; it is the reply hand-off — where
// a stuck client would wedge the dispatcher goroutine — that the
// deadline bounds. A nil clock or non-positive d returns sc unchanged.
func WithServerDeadline(sc ServerConn, clock *sim.Clock, d time.Duration) ServerConn {
	if clock == nil || d <= 0 {
		return sc
	}
	return &deadlineServerConn{inner: sc, clock: clock, d: d}
}

func (s *deadlineServerConn) Recv() (api.Call, error) { return s.inner.Recv() }

func (s *deadlineServerConn) Reply(r api.Reply) error {
	ch := make(chan error, 1)
	start := time.Now()
	go func() { ch <- s.inner.Reply(r) }()
	select {
	case err := <-ch:
		return err
	case <-s.clock.After(s.d):
	}
	if rem := deadlineWallGrace - time.Since(start); rem > 0 {
		select {
		case err := <-ch:
			return err
		case <-time.After(rem):
		}
	}
	_ = s.inner.Close()
	return api.ErrDeadlineExceeded
}

func (s *deadlineServerConn) Close() error { return s.inner.Close() }
