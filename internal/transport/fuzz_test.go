package transport

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"gvrt/internal/api"
)

// encodeEnvelope gob-encodes an envelope the way the TCP transport
// frames it on the wire.
func encodeEnvelope(t testing.TB, env api.Envelope) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Fatalf("encode seed envelope: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeCall feeds arbitrary bytes to the server-side wire decoder.
// The invariant is the one Recv relies on: decoding either fails
// cleanly or yields an envelope whose call answers CallName and
// survives a re-encode/decode round trip unchanged. The seed corpus is
// the call set exercised by the round-trip tests above, including a
// payload-carrying copy and a kernel launch.
func FuzzDecodeCall(f *testing.F) {
	seeds := []api.Call{
		api.MallocCall{Size: 123, Kind: api.AllocPitched},
		api.FreeCall{Ptr: 42},
		api.MemsetCall{Dst: 7, Value: 0xAB, Size: 64},
		api.MemcpyHDCall{Dst: 1, Data: []byte{1, 2, 3, 4, 5}, Size: 5},
		api.MemcpyDHCall{Src: 9, Size: 9},
		api.MemcpyDDCall{Dst: 3, Src: 4, Size: 16},
		api.LaunchCall{
			Kernel:  "inc",
			Grid:    api.Dim3{X: 4, Y: 1, Z: 1},
			Block:   api.Dim3{X: 256, Y: 1, Z: 1},
			PtrArgs: []api.DevPtr{1, 2},
			Scalars: []uint64{99},
			Repeat:  3,
		},
		api.GetDeviceCountCall{},
		api.SynchronizeCall{},
		api.RegisterFatBinaryCall{Binary: api.FatBinary{
			ID:      "fuzz-bin",
			Kernels: []api.KernelMeta{{Name: "inc"}},
		}},
		api.SetAppIDCall{AppID: "app-0"},
		api.CheckpointCall{},
		api.ExitCall{},
	}
	for i, call := range seeds {
		f.Add(encodeEnvelope(f, api.Envelope{Seq: uint64(i + 1), Call: call}))
	}
	// A few malformed inputs so the fuzzer starts from the failure side
	// of the boundary too.
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0x7F}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var env api.Envelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
			return // rejected cleanly: fine
		}
		if env.Call == nil {
			return // envelope without a call: Recv would hand nil upward
		}
		// Whatever decoded must behave like a call...
		_ = env.Call.CallName()
		// ...and survive the wire unchanged.
		reencoded := encodeEnvelope(t, env)
		var again api.Envelope
		if err := gob.NewDecoder(bytes.NewReader(reencoded)).Decode(&again); err != nil {
			t.Fatalf("re-decode of re-encoded envelope failed: %v", err)
		}
		if again.Seq != env.Seq || !reflect.DeepEqual(again.Call, env.Call) {
			t.Fatalf("round trip changed the envelope:\n  first:  %#v\n  second: %#v", env, again)
		}
	})
}
