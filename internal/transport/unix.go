package transport

import (
	"fmt"
	"net"
)

// The paper's prototype communicates over af_unix sockets in
// non-virtualized deployments (§3, via gVirtuS); these helpers provide
// the same, sharing the gob wire protocol with the TCP transport.

// DialUnix connects to a runtime daemon on a unix-domain socket.
func DialUnix(path string) (Conn, error) {
	c, err := net.Dial("unix", path)
	if err != nil {
		return nil, fmt.Errorf("transport: dial unix %s: %w", path, err)
	}
	return NewClientConn(c), nil
}

// ListenUnix starts accepting connections on a unix-domain socket at
// path. The socket file is removed when the listener closes.
func ListenUnix(path string) (*Listener, error) {
	l, err := net.Listen("unix", path)
	if err != nil {
		return nil, fmt.Errorf("transport: listen unix %s: %w", path, err)
	}
	return &Listener{l: l}, nil
}
