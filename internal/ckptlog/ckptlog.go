// Package ckptlog is the runtime's crash-consistent durability layer:
// an append-only, CRC-framed write-ahead journal of checkpoint state.
//
// The paper's §4.6 fault tolerance rests on "the page table + swap area
// are the checkpoint", but an in-memory checkpoint dies with the
// process. This package makes it durable continuously: every mutation
// of the durable state — a page-table entry written or freed, a context
// created or destroyed, a kernel committed, a checkpoint taken — is
// appended to a journal file as a self-describing CRC-framed record,
// and full ContextImage snapshots periodically fold the journal into a
// compact snapshot file via write-temp + fsync + atomic rename.
//
// Durability contract: a record is committed once Sync returns — commit
// records (kernel committed, checkpoint, context destroyed) sync before
// the caller acknowledges the operation, so an acknowledged kernel is
// never lost by a crash. Mutation records between commits ride along:
// fsync is ordered, so syncing a commit record makes every earlier
// append durable too.
//
// Recovery contract (Open): the snapshot and journal are replayed into
// an in-memory mirror. A torn tail — a partial or header-corrupt frame
// at the end of the journal, the signature of a crash mid-write — is
// truncated, never fatal. A frame whose header is intact but whose
// payload fails its CRC (or does not decode) quarantines just that
// frame's context: its state is dropped and later records for it are
// ignored, while every other context is restored. Only a corrupt
// snapshot *header* is unrecoverable, because it carries the sequence
// fence that keeps journal replay idempotent across a compaction crash.
package ckptlog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"gvrt/internal/api"
	"gvrt/internal/memmgr"
)

// RecType identifies one journal record flavour.
type RecType uint8

// Record types. The zero value is invalid so a zeroed frame can never
// masquerade as a real record.
const (
	recInvalid RecType = iota
	// RecSnapshotHeader opens a snapshot file; its payload carries the
	// sequence fence (see headerRecord).
	RecSnapshotHeader
	// RecImage is a full per-context image: the serialised ContextImage
	// plus the kernels committed since its last checkpoint. It appears
	// in snapshot files (one per context) and in the journal when a
	// whole context's state is installed at once (journal attach,
	// RestoreState import).
	RecImage
	// RecContextCreated records a context coming into existence.
	RecContextCreated
	// RecContextDestroyed records an orderly context teardown: its
	// durable state is discarded.
	RecContextDestroyed
	// RecEntryWritten records one page-table entry's swap-side state
	// after a mutation (allocation, host write, checkpoint flush).
	RecEntryWritten
	// RecEntryFreed records a page-table entry de-allocation.
	RecEntryFreed
	// RecKernelCommitted records one acknowledged kernel launch; on
	// recovery the kernels committed since the last checkpoint are
	// replayed to regenerate device-only state (§4.6).
	RecKernelCommitted
	// RecCheckpoint records a checkpoint boundary: the entry-written
	// records before it capture the full device state, so the pending
	// kernel list resets.
	RecCheckpoint
)

var recNames = [...]string{
	recInvalid:          "invalid",
	RecSnapshotHeader:   "snapshot-header",
	RecImage:            "image",
	RecContextCreated:   "context-created",
	RecContextDestroyed: "context-destroyed",
	RecEntryWritten:     "entry-written",
	RecEntryFreed:       "entry-freed",
	RecKernelCommitted:  "kernel-committed",
	RecCheckpoint:       "checkpoint",
}

// String implements fmt.Stringer.
func (t RecType) String() string {
	if int(t) < len(recNames) {
		return recNames[t]
	}
	return fmt.Sprintf("rectype(%d)", int(t))
}

// headerRecord is the payload of RecSnapshotHeader. AppliedSeq is the
// sequence fence: every journal record with Seq <= AppliedSeq is already
// folded into the snapshot and must be skipped on replay — that is what
// makes recovery idempotent when a crash lands between the snapshot
// rename and the journal truncation.
type headerRecord struct {
	AppliedSeq uint64
	Contexts   int
}

// imageRecord is the payload of RecImage: one context's complete
// durable state.
type imageRecord struct {
	Image   memmgr.ContextImage
	Pending []api.LaunchCall
}

// entryRecord is the payload of RecEntryWritten.
type entryRecord struct {
	Entry memmgr.EntryImage
	// NextOff, when non-zero, advances the context's allocation cursor
	// (set by allocation-originated writes so restored contexts never
	// hand out overlapping virtual addresses).
	NextOff uint64
}

// freeRecord is the payload of RecEntryFreed.
type freeRecord struct {
	Virtual api.DevPtr
}

// kernelRecord is the payload of RecKernelCommitted.
type kernelRecord struct {
	Call api.LaunchCall
}

// Frame layout (little-endian):
//
//	offset 0  magic   uint32  frameMagic
//	offset 4  type    uint8   RecType
//	offset 5  ctx     int64   owning context (0 for header records)
//	offset 13 seq     uint64  monotonic record sequence number
//	offset 21 len     uint32  payload length
//	offset 25 hdrCRC  uint32  CRC-32C of bytes [0,25)
//	offset 29 payload
//	...       payCRC  uint32  CRC-32C of the payload
//
// The split CRC is what powers selective quarantine: an intact header
// with a corrupt payload still tells recovery the record's type, owner
// and extent, so exactly that context can be quarantined and the scan
// can continue at the next frame. A corrupt header leaves the extent
// unknowable — the remainder is a torn tail.
const (
	frameMagic    = 0x4756434b // "GVCK"
	frameHdrLen   = 29
	frameTailLen  = 4
	maxPayloadLen = 1 << 28 // 256 MiB: larger lengths are corruption
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded journal frame.
type frame struct {
	Type    RecType
	Ctx     int64
	Seq     uint64
	Payload []byte
}

// encodeFrame appends the framed record to buf and returns it.
func encodeFrame(buf []byte, f frame) []byte {
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = byte(f.Type)
	binary.LittleEndian.PutUint64(hdr[5:], uint64(f.Ctx))
	binary.LittleEndian.PutUint64(hdr[13:], f.Seq)
	binary.LittleEndian.PutUint32(hdr[21:], uint32(len(f.Payload)))
	binary.LittleEndian.PutUint32(hdr[25:], crc32.Checksum(hdr[:25], crcTable))
	buf = append(buf, hdr[:]...)
	buf = append(buf, f.Payload...)
	var tail [frameTailLen]byte
	binary.LittleEndian.PutUint32(tail[0:], crc32.Checksum(f.Payload, crcTable))
	return append(buf, tail[:]...)
}

// decodeResult classifies one frame-decode attempt.
type decodeResult int

const (
	// decodeOK: a complete, fully verified frame.
	decodeOK decodeResult = iota
	// decodeTorn: the data ends mid-frame or the header is corrupt; the
	// extent of the frame is unknowable, so everything from its start
	// is a torn tail.
	decodeTorn
	// decodeCorruptPayload: the header verified but the payload did not
	// — the frame's context should be quarantined, and scanning can
	// continue after the frame.
	decodeCorruptPayload
)

// decodeFrame decodes one frame from data. n is the number of bytes
// consumed (0 when torn). It never panics on arbitrary input.
func decodeFrame(data []byte) (f frame, n int, res decodeResult) {
	if len(data) < frameHdrLen {
		return frame{}, 0, decodeTorn
	}
	hdr := data[:frameHdrLen]
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return frame{}, 0, decodeTorn
	}
	if binary.LittleEndian.Uint32(hdr[25:]) != crc32.Checksum(hdr[:25], crcTable) {
		return frame{}, 0, decodeTorn
	}
	plen := binary.LittleEndian.Uint32(hdr[21:])
	if plen > maxPayloadLen {
		// The header CRC matched but the length is absurd; treat as torn
		// rather than attempting a multi-gigabyte read.
		return frame{}, 0, decodeTorn
	}
	f = frame{
		Type: RecType(hdr[4]),
		Ctx:  int64(binary.LittleEndian.Uint64(hdr[5:])),
		Seq:  binary.LittleEndian.Uint64(hdr[13:]),
	}
	total := frameHdrLen + int(plen) + frameTailLen
	if len(data) < total {
		return frame{}, 0, decodeTorn
	}
	payload := data[frameHdrLen : frameHdrLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[frameHdrLen+int(plen):])
	if crc32.Checksum(payload, crcTable) != want {
		return f, total, decodeCorruptPayload
	}
	f.Payload = payload
	return f, total, decodeOK
}

// encodePayload gob-encodes v as a self-contained record payload.
func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("ckptlog: encoding record: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePayload gob-decodes a record payload. Any decode failure —
// including a panic from a hostile gob stream — is reported as a typed
// error, never a crash: decode feeds on disk bytes that survived a CRC
// only by construction or by fuzzing.
func decodePayload(data []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ckptlog: record decode panicked: %v: %w", r, api.ErrInvalidValue)
		}
	}()
	dec := gob.NewDecoder(io.LimitReader(bytes.NewReader(data), maxPayloadLen))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("ckptlog: decoding record: %v: %w", err, api.ErrInvalidValue)
	}
	return nil
}
