package ckptlog

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
	"gvrt/internal/memmgr"
)

// File names inside a journal directory.
const (
	snapshotName = "snapshot.ckpt"
	journalName  = "journal.wal"
	tmpName      = "snapshot.tmp"
)

// DefaultCompactBytes is the journal growth (bytes appended since the
// last compaction) that triggers an automatic compaction.
const DefaultCompactBytes = 4 << 20

// Options tunes a Journal.
type Options struct {
	// Faults, when set, arms the journal's crash points (pre-fsync,
	// post-fsync, mid-compaction) against the deterministic fault plane.
	Faults *faultinject.Plane
	// OnCrash is invoked when an armed crash point fires. Nil ignores
	// crash decisions (library users); daemons install Die so an armed
	// point kills the process exactly as a power loss would.
	OnCrash func()
	// CompactBytes is the auto-compaction threshold; 0 means
	// DefaultCompactBytes, negative disables auto-compaction.
	CompactBytes int64
	// Logf, when set, receives journal events (compactions, recovery
	// repairs, quarantines).
	Logf func(format string, args ...any)
}

// Die is the production OnCrash: SIGKILL the process. No deferred
// function, no flush, no signal handler runs — the closest a process
// can get to losing power at the armed boundary.
func Die() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}

// Stats is a snapshot of a journal's counters.
type Stats struct {
	// Records is the number of records appended this run.
	Records int64
	// Syncs is the number of fsync barriers issued.
	Syncs int64
	// Bytes is the number of journal bytes appended this run.
	Bytes int64
	// Compactions counts snapshot compactions completed this run.
	Compactions int64
	// TornBytes is the torn-tail length truncated during recovery.
	TornBytes int64
	// Quarantined counts context images quarantined during recovery.
	Quarantined int64
	// Contexts is the number of contexts currently mirrored.
	Contexts int
}

// mirrorCtx is one context's durable state inside the in-memory mirror.
type mirrorCtx struct {
	nextOff uint64
	entries map[api.DevPtr]memmgr.EntryImage
	pending []api.LaunchCall
}

// Journal is an open checkpoint journal: an append-only record log plus
// the in-memory mirror of the state it encodes. The mirror is what
// compaction snapshots and what Open returns after recovery — journal
// bytes are written through it, never parsed back during normal
// operation.
//
// A Journal is safe for concurrent use; one mutex serialises appends so
// records land in a total order.
type Journal struct {
	dir  string
	opts Options

	preSync  *faultinject.Hook
	postSync *faultinject.Hook
	compact  *faultinject.Hook

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	applied  uint64 // sequence fence of the current snapshot
	mirror   map[int64]*mirrorCtx
	dead     bool // a persistent write error; appends become no-ops
	appended int64
	stats    Stats
}

// logf emits a journal event when configured.
func (j *Journal) logf(format string, args ...any) {
	if j.opts.Logf != nil {
		j.opts.Logf(format, args...)
	}
}

// crashPoint consults an armed crash hook and, when it fires, invokes
// the configured OnCrash. With the production OnCrash (Die) this call
// never returns.
func (j *Journal) crashPoint(h *faultinject.Hook) {
	if h == nil {
		return
	}
	if h.Check().Crash && j.opts.OnCrash != nil {
		j.opts.OnCrash()
	}
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Healthy reports whether the journal can still persist commits: false
// after a persistent write error or Close. The operator plane's
// /healthz readiness probe keys off it.
func (j *Journal) Healthy() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.dead
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.Contexts = len(j.mirror)
	return s
}

// HasContext reports whether the mirror currently tracks ctxID — used
// by the runtime's journal attach to avoid re-snapshotting state that
// recovery already restored.
func (j *Journal) HasContext(ctxID int64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.mirror[ctxID]
	return ok
}

// ctx returns (creating if needed) the mirror state for ctxID.
func (j *Journal) ctx(ctxID int64) *mirrorCtx {
	mc := j.mirror[ctxID]
	if mc == nil {
		mc = &mirrorCtx{entries: make(map[api.DevPtr]memmgr.EntryImage)}
		j.mirror[ctxID] = mc
	}
	return mc
}

// append frames and writes one record, applying it to the mirror. The
// caller holds j.mu. A dead journal drops the record silently — the
// failure was already reported loudly on the append that killed it.
func (j *Journal) append(t RecType, ctxID int64, payload []byte) error {
	if j.dead {
		return fmt.Errorf("ckptlog: journal dead after earlier write error: %w", api.ErrJournalFailure)
	}
	j.seq++
	buf := encodeFrame(nil, frame{Type: t, Ctx: ctxID, Seq: j.seq, Payload: payload})
	if _, err := j.f.Write(buf); err != nil {
		j.dead = true
		j.logf("journal write failed (journal now dead): %v", err)
		return fmt.Errorf("ckptlog: appending %s: %v: %w", t, err, api.ErrJournalFailure)
	}
	j.appended += int64(len(buf))
	j.stats.Records++
	j.stats.Bytes += int64(len(buf))
	return nil
}

// sync runs the fsync barrier with its two crash points.
func (j *Journal) sync() error {
	if j.dead {
		return fmt.Errorf("ckptlog: journal dead: %w", api.ErrJournalFailure)
	}
	j.crashPoint(j.preSync)
	if err := j.f.Sync(); err != nil {
		j.dead = true
		j.logf("journal fsync failed (journal now dead): %v", err)
		return fmt.Errorf("ckptlog: fsync: %v: %w", err, api.ErrJournalFailure)
	}
	j.stats.Syncs++
	j.crashPoint(j.postSync)
	return nil
}

// maybeCompact runs a compaction when the journal grew past the
// threshold. The caller holds j.mu.
func (j *Journal) maybeCompact() {
	limit := j.opts.CompactBytes
	if limit == 0 {
		limit = DefaultCompactBytes
	}
	if limit < 0 || j.appended < limit {
		return
	}
	if err := j.compactLocked(); err != nil {
		j.logf("auto-compaction failed: %v", err)
	}
}

// ContextCreated records a context coming into existence. Not a commit
// point: an empty context that was never synced is not worth recovering.
func (j *Journal) ContextCreated(ctxID int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ctx(ctxID)
	_ = j.append(RecContextCreated, ctxID, nil)
}

// ContextReleased records an orderly context teardown and discards its
// durable state. It is a commit point (synced): after an acknowledged
// exit the session must not resurrect on restart. The method name
// matches memmgr.Observer.
func (j *Journal) ContextReleased(ctxID int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.mirror[ctxID]; !ok {
		return
	}
	delete(j.mirror, ctxID)
	if err := j.append(RecContextDestroyed, ctxID, nil); err != nil {
		return
	}
	_ = j.sync()
	j.maybeCompact()
}

// EntryWritten records one page-table entry's new swap-side state. Not
// individually synced: the next commit record's fsync makes it durable
// (prefix durability). The signature matches memmgr.Observer.
func (j *Journal) EntryWritten(ctxID int64, e memmgr.EntryImage, nextOff uint64) {
	payload, err := encodePayload(entryRecord{Entry: e, NextOff: nextOff})
	if err != nil {
		j.logf("entry-written encode failed: %v", err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	mc := j.ctx(ctxID)
	mc.entries[e.Virtual] = e
	if nextOff > mc.nextOff {
		mc.nextOff = nextOff
	}
	_ = j.append(RecEntryWritten, ctxID, payload)
}

// EntryFreed records a page-table entry de-allocation. The signature
// matches memmgr.Observer.
func (j *Journal) EntryFreed(ctxID int64, virtual api.DevPtr) {
	payload, err := encodePayload(freeRecord{Virtual: virtual})
	if err != nil {
		j.logf("entry-freed encode failed: %v", err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if mc := j.mirror[ctxID]; mc != nil {
		delete(mc.entries, virtual)
	}
	_ = j.append(RecEntryFreed, ctxID, payload)
}

// KernelCommitted records an acknowledged kernel launch. It is THE
// write-ahead commit point: the record (and by fsync ordering every
// mutation record before it) is durable before this returns, so the
// runtime may acknowledge the launch to the client knowing a crash
// cannot lose it. An error means the launch must not be acknowledged.
func (j *Journal) KernelCommitted(ctxID int64, call api.LaunchCall) error {
	payload, err := encodePayload(kernelRecord{Call: call})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	mc := j.ctx(ctxID)
	if err := j.append(RecKernelCommitted, ctxID, payload); err != nil {
		return err
	}
	if err := j.sync(); err != nil {
		return err
	}
	mc.pending = append(mc.pending, call)
	j.maybeCompact()
	return nil
}

// CheckpointMark records a checkpoint boundary: the entry-written
// records appended before it capture the context's full device state,
// so the pending kernel list resets. Synced — a checkpoint the client
// saw succeed must hold after a crash.
func (j *Journal) CheckpointMark(ctxID int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	mc := j.ctx(ctxID)
	if err := j.append(RecCheckpoint, ctxID, nil); err != nil {
		return err
	}
	if err := j.sync(); err != nil {
		return err
	}
	mc.pending = mc.pending[:0]
	j.maybeCompact()
	return nil
}

// SnapshotContext installs a context's complete state at once (journal
// attach over a live runtime, RestoreState import). Synced.
func (j *Journal) SnapshotContext(img *memmgr.ContextImage, pending []api.LaunchCall) error {
	payload, err := encodePayload(imageRecord{Image: *img, Pending: pending})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(RecImage, img.CtxID, payload); err != nil {
		return err
	}
	if err := j.sync(); err != nil {
		return err
	}
	j.applyImage(img.CtxID, imageRecord{Image: *img, Pending: pending})
	return nil
}

// applyImage replaces a context's mirror state with a full image.
func (j *Journal) applyImage(ctxID int64, rec imageRecord) {
	mc := &mirrorCtx{
		nextOff: rec.Image.NextOff,
		entries: make(map[api.DevPtr]memmgr.EntryImage, len(rec.Image.Entries)),
		pending: rec.Pending,
	}
	for _, e := range rec.Image.Entries {
		mc.entries[e.Virtual] = e
	}
	j.mirror[ctxID] = mc
}

// Sync forces an fsync barrier: every record appended so far is durable
// when it returns.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sync()
}

// imageOf builds the ContextImage for one mirrored context, entries in
// ascending virtual-address order (deterministic output).
func (mc *mirrorCtx) imageOf(ctxID int64) *memmgr.ContextImage {
	img := &memmgr.ContextImage{CtxID: ctxID, NextOff: mc.nextOff}
	ptrs := make([]api.DevPtr, 0, len(mc.entries))
	for v := range mc.entries {
		ptrs = append(ptrs, v)
	}
	sort.Slice(ptrs, func(i, k int) bool { return ptrs[i] < ptrs[k] })
	for _, v := range ptrs {
		img.Entries = append(img.Entries, mc.entries[v])
	}
	return img
}

// Compact folds the journal into a fresh snapshot: the mirror is
// written to a temporary file, fsynced, atomically renamed over the
// snapshot, and the journal truncated. A crash at any boundary —
// including the two armed mid-compaction crash points — leaves either
// the old state (before the rename) or the new state (after it), never
// a mix: the snapshot header's sequence fence makes journal records
// already folded into the renamed snapshot no-ops on replay.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	if j.dead {
		return fmt.Errorf("ckptlog: journal dead: %w", api.ErrJournalFailure)
	}
	// The snapshot must not outrun the journal: sync first so the fence
	// covers only records that are actually durable.
	if err := j.sync(); err != nil {
		return err
	}
	tmp := filepath.Join(j.dir, tmpName)
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckptlog: compaction temp: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			tf.Close()
			os.Remove(tmp)
		}
	}()

	hdrPayload, err := encodePayload(headerRecord{AppliedSeq: j.seq, Contexts: len(j.mirror)})
	if err != nil {
		return err
	}
	buf := encodeFrame(nil, frame{Type: RecSnapshotHeader, Seq: j.seq, Payload: hdrPayload})
	ids := make([]int64, 0, len(j.mirror))
	for id := range j.mirror {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		mc := j.mirror[id]
		payload, err := encodePayload(imageRecord{Image: *mc.imageOf(id), Pending: mc.pending})
		if err != nil {
			return err
		}
		buf = encodeFrame(buf, frame{Type: RecImage, Ctx: id, Seq: j.seq, Payload: payload})
	}
	if _, err := tf.Write(buf); err != nil {
		return fmt.Errorf("ckptlog: writing snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		return fmt.Errorf("ckptlog: syncing snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("ckptlog: closing snapshot: %w", err)
	}

	// Crash point 1: temp written and durable, rename not yet done. A
	// crash here recovers from the OLD snapshot + full journal.
	j.crashPoint(j.compact)

	if err := os.Rename(tmp, filepath.Join(j.dir, snapshotName)); err != nil {
		return fmt.Errorf("ckptlog: installing snapshot: %w", err)
	}
	ok = true
	syncDir(j.dir)

	// Crash point 2: new snapshot installed, journal not yet truncated.
	// A crash here recovers from the NEW snapshot; the journal's stale
	// records sit below the sequence fence and replay as no-ops.
	j.crashPoint(j.compact)

	if err := j.f.Truncate(0); err != nil {
		j.dead = true
		return fmt.Errorf("ckptlog: truncating journal: %v: %w", err, api.ErrJournalFailure)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		j.dead = true
		return fmt.Errorf("ckptlog: rewinding journal: %v: %w", err, api.ErrJournalFailure)
	}
	if err := j.f.Sync(); err != nil {
		j.dead = true
		return fmt.Errorf("ckptlog: syncing truncated journal: %v: %w", err, api.ErrJournalFailure)
	}
	j.applied = j.seq
	j.appended = 0
	j.stats.Compactions++
	j.logf("journal compacted: %d contexts, fence seq %d", len(j.mirror), j.applied)
	return nil
}

// Close syncs and closes the journal. The files remain, ready for the
// next Open.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.sync()
	cerr := j.f.Close()
	j.f = nil
	j.dead = true
	if serr != nil {
		return serr
	}
	return cerr
}

// syncDir fsyncs a directory so a rename inside it is durable. Best
// effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
