package ckptlog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
	"gvrt/internal/memmgr"
)

func entry(v api.DevPtr, data string) memmgr.EntryImage {
	return memmgr.EntryImage{
		Virtual: v,
		Size:    uint64(len(data)),
		HasData: true,
		Data:    []byte(data),
	}
}

func launch(kernel string, arg api.DevPtr) api.LaunchCall {
	return api.LaunchCall{
		Kernel:  kernel,
		Grid:    api.Dim3{X: 1, Y: 1, Z: 1},
		Block:   api.Dim3{X: 32, Y: 1, Z: 1},
		PtrArgs: []api.DevPtr{arg},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

// populate writes a deterministic two-context workload into a journal:
// ctx 1 with two entries and one pending kernel, ctx 2 with one entry
// and a completed checkpoint.
func populate(t *testing.T, j *Journal) {
	t.Helper()
	j.ContextCreated(1)
	j.ContextCreated(2)
	j.EntryWritten(1, entry(0x100, "alpha"), 256)
	j.EntryWritten(1, entry(0x200, "beta"), 512)
	j.EntryWritten(2, entry(0x300, "gamma"), 256)
	if err := j.KernelCommitted(1, launch("inc", 0x100)); err != nil {
		t.Fatalf("KernelCommitted: %v", err)
	}
	if err := j.CheckpointMark(2); err != nil {
		t.Fatalf("CheckpointMark: %v", err)
	}
}

// checkPopulated verifies a Recovered matches what populate wrote.
func checkPopulated(t *testing.T, rec *Recovered) {
	t.Helper()
	if len(rec.Images) != 2 {
		t.Fatalf("recovered %d images, want 2: %+v", len(rec.Images), rec.Images)
	}
	img1, img2 := rec.Images[0], rec.Images[1]
	if img1.CtxID != 1 || img2.CtxID != 2 {
		t.Fatalf("image ctx ids = %d, %d; want 1, 2", img1.CtxID, img2.CtxID)
	}
	if len(img1.Entries) != 2 || string(img1.Entries[0].Data) != "alpha" || string(img1.Entries[1].Data) != "beta" {
		t.Fatalf("ctx 1 entries wrong: %+v", img1.Entries)
	}
	if img1.NextOff != 512 {
		t.Fatalf("ctx 1 NextOff = %d, want 512", img1.NextOff)
	}
	if len(img2.Entries) != 1 || string(img2.Entries[0].Data) != "gamma" {
		t.Fatalf("ctx 2 entries wrong: %+v", img2.Entries)
	}
	if got := rec.Pending[1]; len(got) != 1 || got[0].Kernel != "inc" {
		t.Fatalf("ctx 1 pending = %+v, want one inc launch", got)
	}
	if got := rec.Pending[2]; len(got) != 0 {
		t.Fatalf("ctx 2 pending = %+v, want none (checkpointed)", got)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, dir, Options{})
	if len(rec.Images) != 0 {
		t.Fatalf("fresh dir recovered %d images", len(rec.Images))
	}
	populate(t, j)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec2 := mustOpen(t, dir, Options{})
	checkPopulated(t, rec2)
	if rec2.TornBytes != 0 || len(rec2.Quarantined) != 0 {
		t.Fatalf("clean reopen reported repairs: torn=%d quarantined=%v", rec2.TornBytes, rec2.Quarantined)
	}
	if rec2.MaxCtxID != 2 {
		t.Fatalf("MaxCtxID = %d, want 2", rec2.MaxCtxID)
	}
}

func TestJournalReleaseDiscards(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	j.ContextReleased(1)
	j.Close()

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Images) != 1 || rec.Images[0].CtxID != 2 {
		t.Fatalf("after release of ctx 1 recovered %+v, want only ctx 2", rec.Images)
	}
	// The ID space must still advance past the released context.
	if rec.MaxCtxID != 2 {
		t.Fatalf("MaxCtxID = %d, want 2", rec.MaxCtxID)
	}
}

func TestJournalFreeDiscardsEntry(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	j.EntryFreed(1, 0x100)
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	j.Close()

	_, rec := mustOpen(t, dir, Options{})
	img1 := rec.Images[0]
	if len(img1.Entries) != 1 || img1.Entries[0].Virtual != 0x200 {
		t.Fatalf("ctx 1 after free = %+v, want only entry 0x200", img1.Entries)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, frameHdrLen - 1, frameHdrLen + 3} {
		dir := t.TempDir()
		j, _ := mustOpen(t, dir, Options{})
		populate(t, j)
		j.Close()

		// Simulate a crash mid-append: a fresh, partially written frame at
		// the tail.
		path := filepath.Join(dir, journalName)
		full := encodeFrame(nil, frame{Type: RecEntryWritten, Ctx: 1, Seq: 999, Payload: []byte("partial")})
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(full[:cut]); err != nil {
			t.Fatal(err)
		}
		f.Close()

		_, rec := mustOpen(t, dir, Options{})
		if rec.TornBytes != int64(cut) {
			t.Fatalf("cut=%d: TornBytes = %d, want %d", cut, rec.TornBytes, cut)
		}
		checkPopulated(t, rec)

		// The truncation must be physical: a third open sees a clean file.
		_, rec3 := mustOpen(t, dir, Options{})
		if rec3.TornBytes != 0 {
			t.Fatalf("cut=%d: second recovery still sees torn tail of %d", cut, rec3.TornBytes)
		}
		checkPopulated(t, rec3)
	}
}

func TestCorruptPayloadQuarantinesOneContext(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	j.Close()

	// Flip one byte inside the payload of ctx 2's entry-written record.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off, target := 0, -1
	for off < len(data) {
		f, n, res := decodeFrame(data[off:])
		if res != decodeOK {
			t.Fatalf("pre-corruption journal not clean at %d", off)
		}
		if f.Type == RecEntryWritten && f.Ctx == 2 {
			target = off + frameHdrLen
		}
		off += n
	}
	if target < 0 {
		t.Fatal("no ctx 2 entry-written record found")
	}
	data[target] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Quarantined) != 1 || rec.Quarantined[0].CtxID != 2 {
		t.Fatalf("quarantined = %v, want exactly ctx 2", rec.Quarantined)
	}
	if len(rec.Images) != 1 || rec.Images[0].CtxID != 1 {
		t.Fatalf("recovered %+v, want ctx 1 intact", rec.Images)
	}
	if string(rec.Images[0].Entries[0].Data) != "alpha" {
		t.Fatalf("ctx 1 data damaged: %+v", rec.Images[0].Entries)
	}
	if rec.MaxCtxID != 2 {
		t.Fatalf("MaxCtxID = %d, want 2 (quarantined ids still fence the allocator)", rec.MaxCtxID)
	}
}

func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil || st.Size() != 0 {
		t.Fatalf("journal after compaction: size=%v err=%v, want empty", st, err)
	}
	// Post-compaction appends land in the truncated journal and recover.
	j.EntryWritten(1, entry(0x400, "delta"), 1024)
	if err := j.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	j.Close()

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Images) != 2 {
		t.Fatalf("recovered %d images, want 2", len(rec.Images))
	}
	img1 := rec.Images[0]
	if len(img1.Entries) != 3 || string(img1.Entries[2].Data) != "delta" {
		t.Fatalf("ctx 1 after compaction+append = %+v", img1.Entries)
	}
	if got := rec.Pending[1]; len(got) != 1 || got[0].Kernel != "inc" {
		t.Fatalf("pending lost across compaction: %+v", got)
	}
}

// crashSentinel distinguishes the simulated crash from real panics.
type crashSentinel struct{}

// simulateCrashes runs fn with a journal whose OnCrash panics, catching
// the panic — the in-process stand-in for SIGKILL. It returns true if a
// crash fired.
func simulateCrash(t *testing.T, j *Journal, fn func()) (crashed bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(crashSentinel); !ok {
			panic(r)
		}
		crashed = true
		// The "process" died with j.mu held; the instance is dead either
		// way, but unlock so Close in cleanup paths cannot deadlock.
		j.mu.TryLock()
		j.mu.Unlock()
		j.dead = true
	}()
	fn()
	return false
}

func crashPlan(point faultinject.Point, nth uint64) *faultinject.Plane {
	return faultinject.New(faultinject.Plan{
		Name: "test-crash",
		Rules: []faultinject.Rule{{
			Point:  point,
			AtNth:  nth,
			Action: faultinject.ActCrash,
		}},
	})
}

// TestCompactionCrashAtomicity kills the journal at both mid-compaction
// crash points and at the pre-fsync point, and checks recovery lands on
// a consistent state either way.
func TestCompactionCrashAtomicity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		point faultinject.Point
		nth   uint64
	}{
		{"before-rename", faultinject.PointJournalCompact, 1},
		{"after-rename-before-truncate", faultinject.PointJournalCompact, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := mustOpen(t, dir, Options{
				Faults:  crashPlan(tc.point, tc.nth),
				OnCrash: func() { panic(crashSentinel{}) },
			})
			populate(t, j)
			if !simulateCrash(t, j, func() { _ = j.Compact() }) {
				t.Fatal("crash point did not fire")
			}

			// Recovery must see exactly the populated state: before the
			// rename the old snapshot + journal hold it; after the rename
			// the new snapshot holds it and the stale journal records sit
			// below the sequence fence (this is the double-apply trap —
			// the pending inc kernel must appear once, not twice).
			_, rec := mustOpen(t, dir, Options{})
			checkPopulated(t, rec)
			if len(rec.Quarantined) != 0 {
				t.Fatalf("crash recovery quarantined %v", rec.Quarantined)
			}
		})
	}
}

// TestPreSyncCrash kills the journal before the commit fsync: the
// unacknowledged kernel may or may not survive (the bytes reached the
// OS), but recovery must not fail and earlier state must be intact.
func TestPreSyncCrash(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{
		Faults:  crashPlan(faultinject.PointJournalPreSync, 3),
		OnCrash: func() { panic(crashSentinel{}) },
	})
	populate(t, j) // syncs #1 (kernel) and #2 (checkpoint)
	crashed := simulateCrash(t, j, func() {
		_ = j.KernelCommitted(1, launch("inc2", 0x200))
	})
	if !crashed {
		t.Fatal("pre-sync crash point did not fire")
	}

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Images) != 2 {
		t.Fatalf("recovered %d images, want 2", len(rec.Images))
	}
	pending := rec.Pending[1]
	switch len(pending) {
	case 1:
		if pending[0].Kernel != "inc" {
			t.Fatalf("pending = %+v", pending)
		}
	case 2:
		// The in-flight record reached the file before the crash: also
		// legal, it was simply never acknowledged.
		if pending[0].Kernel != "inc" || pending[1].Kernel != "inc2" {
			t.Fatalf("pending = %+v", pending)
		}
	default:
		t.Fatalf("pending = %+v, want 1 or 2 kernels", pending)
	}
}

func TestCorruptSnapshotHeaderIsFatal(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	j.Close()

	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[6] ^= 0xff // inside the header frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, oerr := Open(dir, Options{})
	if !errors.Is(oerr, ErrCorruptSnapshot) {
		t.Fatalf("Open = %v, want ErrCorruptSnapshot", oerr)
	}
}

func TestCorruptSnapshotImageQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	j.Close()

	// Corrupt ctx 1's image payload inside the snapshot.
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off, target := 0, -1
	for off < len(data) {
		f, n, res := decodeFrame(data[off:])
		if res != decodeOK {
			t.Fatalf("pre-corruption snapshot not clean at %d", off)
		}
		if f.Type == RecImage && f.Ctx == 1 {
			target = off + frameHdrLen
		}
		off += n
	}
	data[target] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Quarantined) != 1 || rec.Quarantined[0].CtxID != 1 {
		t.Fatalf("quarantined = %v, want exactly ctx 1", rec.Quarantined)
	}
	if len(rec.Images) != 1 || rec.Images[0].CtxID != 2 {
		t.Fatalf("recovered %+v, want ctx 2 intact", rec.Images)
	}
}

func TestStaleCompactionTempRemoved(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	j.Close()
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	checkPopulated(t, rec)
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatalf("stale temp still present: %v", err)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{CompactBytes: 1024})
	j.ContextCreated(1)
	for i := 0; i < 64; i++ {
		j.EntryWritten(1, entry(api.DevPtr(0x100+i*0x100), "payload-data"), uint64(256*(i+1)))
		if err := j.CheckpointMark(1); err != nil {
			t.Fatalf("CheckpointMark: %v", err)
		}
	}
	if got := j.Stats().Compactions; got == 0 {
		t.Fatal("no auto-compaction after 64 synced rounds over a 1KiB threshold")
	}
	j.Close()

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Images) != 1 || len(rec.Images[0].Entries) != 64 {
		t.Fatalf("recovered %+v, want 64 entries", rec.Images)
	}
}

func TestSequenceContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	populate(t, j)
	j.Close()

	j2, _ := mustOpen(t, dir, Options{})
	// New records must sort after every recovered one; a sequence reset
	// would make them fall below a later snapshot's fence.
	j2.EntryWritten(1, entry(0x500, "epsilon"), 2048)
	if err := j2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	j2.Close()

	_, rec := mustOpen(t, dir, Options{})
	img1 := rec.Images[0]
	if len(img1.Entries) != 3 || string(img1.Entries[2].Data) != "epsilon" {
		t.Fatalf("ctx 1 = %+v, want epsilon entry preserved", img1.Entries)
	}
}
