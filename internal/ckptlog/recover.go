package ckptlog

import (
	"fmt"
	"os"
	"path/filepath"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
	"gvrt/internal/memmgr"
)

// Quarantine describes one context image recovery could not restore.
type Quarantine struct {
	// CtxID is the owning context, or 0 when even the owner is
	// unknowable (a corrupt snapshot region).
	CtxID int64
	// Where locates the damage ("snapshot" or "journal").
	Where string
	// Reason says what failed (payload CRC, record decode, ...).
	Reason string
}

// String implements fmt.Stringer.
func (q Quarantine) String() string {
	if q.CtxID == 0 {
		return fmt.Sprintf("%s: %s", q.Where, q.Reason)
	}
	return fmt.Sprintf("ctx %d (%s): %s", q.CtxID, q.Where, q.Reason)
}

// Recovered is what Open reconstructed from disk.
type Recovered struct {
	// Images are the restored context images, ascending by context ID.
	Images []*memmgr.ContextImage
	// Pending maps a context to the kernels committed after its last
	// checkpoint; the runtime replays them on resume to regenerate the
	// device-only state the crash destroyed (§4.6).
	Pending map[int64][]api.LaunchCall
	// Quarantined lists the context images dropped as corrupt. Their
	// sessions are lost; everything else was restored.
	Quarantined []Quarantine
	// TornBytes is the length of the torn journal tail that was
	// truncated (0 on a clean shutdown).
	TornBytes int64
	// MaxCtxID is the highest context ID seen anywhere in the log —
	// including quarantined and destroyed contexts — so a recovering
	// runtime can keep allocating IDs above every ID ever issued.
	MaxCtxID int64
}

// ErrCorruptSnapshot reports an unrecoverable snapshot: its header —
// which carries the sequence fence that keeps journal replay idempotent
// — is missing or corrupt. Unlike a torn journal tail or a corrupt
// per-context image, this cannot be repaired locally; the operator must
// intervene (restore the file or accept a fresh start).
var ErrCorruptSnapshot = fmt.Errorf("ckptlog: snapshot header corrupt: %w", api.ErrInvalidValue)

// Open opens (creating if absent) the journal directory, recovers the
// state it holds, and returns the journal ready for appends plus what
// was recovered.
//
// Repairs are automatic and loud, never fatal: a torn journal tail is
// truncated, a context image whose payload fails its CRC or decode is
// quarantined while every other context is restored. The one fatal
// corruption is the snapshot header (see ErrCorruptSnapshot).
func Open(dir string, opts Options) (*Journal, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ckptlog: creating journal dir: %w", err)
	}
	// A leftover temp snapshot is a compaction that died before its
	// rename: the old snapshot + journal are authoritative.
	if err := os.Remove(filepath.Join(dir, tmpName)); err == nil && opts.Logf != nil {
		opts.Logf("removed interrupted compaction temp")
	}

	j := &Journal{
		dir:      dir,
		opts:     opts,
		preSync:  opts.Faults.Hook(faultinject.PointJournalPreSync, ""),
		postSync: opts.Faults.Hook(faultinject.PointJournalPostSync, ""),
		compact:  opts.Faults.Hook(faultinject.PointJournalCompact, ""),
		mirror:   make(map[int64]*mirrorCtx),
	}
	rec := &Recovered{Pending: make(map[int64][]api.LaunchCall)}
	quarantined := make(map[int64]bool)

	if err := j.recoverSnapshot(rec, quarantined); err != nil {
		return nil, nil, err
	}
	if err := j.recoverJournal(rec, quarantined); err != nil {
		return nil, nil, err
	}

	// Drop quarantined contexts from the mirror and surface the rest.
	for id := range quarantined {
		delete(j.mirror, id)
	}
	ids := make([]int64, 0, len(j.mirror))
	for id, mc := range j.mirror {
		if len(mc.entries) == 0 && len(mc.pending) == 0 {
			// An empty context (connected, never allocated) is not worth
			// resurrecting as an orphan session; keep mirroring it so a
			// later record can still fill it in, but do not report it.
			continue
		}
		ids = append(ids, id)
	}
	sortInt64(ids)
	for _, id := range ids {
		mc := j.mirror[id]
		rec.Images = append(rec.Images, mc.imageOf(id))
		if len(mc.pending) > 0 {
			rec.Pending[id] = append([]api.LaunchCall(nil), mc.pending...)
		}
	}
	j.stats.TornBytes = rec.TornBytes
	j.stats.Quarantined = int64(len(rec.Quarantined))

	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ckptlog: opening journal: %w", err)
	}
	j.f = f
	if st, err := f.Stat(); err == nil {
		j.appended = st.Size()
	}
	return j, rec, nil
}

// recoverSnapshot loads the snapshot file into the mirror.
func (j *Journal) recoverSnapshot(rec *Recovered, quarantined map[int64]bool) error {
	data, err := os.ReadFile(filepath.Join(j.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ckptlog: reading snapshot: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	f, n, res := decodeFrame(data)
	if res != decodeOK || f.Type != RecSnapshotHeader {
		return ErrCorruptSnapshot
	}
	var hdr headerRecord
	if err := decodePayload(f.Payload, &hdr); err != nil {
		return ErrCorruptSnapshot
	}
	j.seq = hdr.AppliedSeq
	j.applied = hdr.AppliedSeq
	data = data[n:]
	images := 0
	for len(data) > 0 {
		f, n, res := decodeFrame(data)
		switch res {
		case decodeTorn:
			// The snapshot was written with one fsync before an atomic
			// rename, so a torn region mid-snapshot is media damage, not
			// a crash artifact. The remaining images are unreadable;
			// restore what decoded and quarantine the remainder.
			rec.Quarantined = append(rec.Quarantined, Quarantine{
				Where:  "snapshot",
				Reason: fmt.Sprintf("unreadable region after %d of %d images", images, hdr.Contexts),
			})
			j.logf("snapshot: unreadable region after %d of %d images; rest quarantined", images, hdr.Contexts)
			return nil
		case decodeCorruptPayload:
			quarantined[f.Ctx] = true
			rec.Quarantined = append(rec.Quarantined, Quarantine{
				CtxID: f.Ctx, Where: "snapshot", Reason: "image payload failed CRC",
			})
			j.logf("snapshot: ctx %d image failed CRC; quarantined", f.Ctx)
			j.noteCtxID(rec, f.Ctx)
			data = data[n:]
			images++
			continue
		}
		if f.Type != RecImage {
			data = data[n:]
			continue
		}
		var ir imageRecord
		if err := decodePayload(f.Payload, &ir); err != nil {
			quarantined[f.Ctx] = true
			rec.Quarantined = append(rec.Quarantined, Quarantine{
				CtxID: f.Ctx, Where: "snapshot", Reason: "image does not decode",
			})
			j.logf("snapshot: ctx %d image does not decode; quarantined", f.Ctx)
		} else {
			j.applyImage(f.Ctx, ir)
		}
		j.noteCtxID(rec, f.Ctx)
		data = data[n:]
		images++
	}
	return nil
}

// recoverJournal replays the journal over the snapshot state,
// truncating a torn tail and quarantining contexts whose records are
// corrupt mid-file.
func (j *Journal) recoverJournal(rec *Recovered, quarantined map[int64]bool) error {
	path := filepath.Join(j.dir, journalName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ckptlog: reading journal: %w", err)
	}
	off := 0
	for off < len(data) {
		f, n, res := decodeFrame(data[off:])
		if res == decodeTorn {
			// A crash mid-append: everything from here was never
			// acknowledged. Truncate so the next append starts on a
			// clean frame boundary.
			rec.TornBytes = int64(len(data) - off)
			j.logf("journal: torn tail of %d bytes at offset %d; truncated", rec.TornBytes, off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return fmt.Errorf("ckptlog: truncating torn tail: %w", err)
			}
			break
		}
		if res == decodeCorruptPayload {
			// The header names the owner, so only that context need be
			// lost; scanning continues at the next frame.
			if !quarantined[f.Ctx] {
				quarantined[f.Ctx] = true
				rec.Quarantined = append(rec.Quarantined, Quarantine{
					CtxID: f.Ctx, Where: "journal", Reason: "record payload failed CRC",
				})
				j.logf("journal: ctx %d record failed CRC; context quarantined", f.Ctx)
			}
			j.noteCtxID(rec, f.Ctx)
			off += n
			continue
		}
		off += n
		if f.Seq <= j.applied {
			// Already folded into the snapshot (a compaction crashed
			// between its rename and the journal truncation).
			continue
		}
		if f.Seq > j.seq {
			j.seq = f.Seq
		}
		j.noteCtxID(rec, f.Ctx)
		if quarantined[f.Ctx] {
			continue
		}
		if err := j.applyRecord(f); err != nil {
			quarantined[f.Ctx] = true
			rec.Quarantined = append(rec.Quarantined, Quarantine{
				CtxID: f.Ctx, Where: "journal", Reason: err.Error(),
			})
			j.logf("journal: ctx %d record does not decode; context quarantined", f.Ctx)
		}
	}
	return nil
}

// applyRecord applies one verified journal record to the mirror.
func (j *Journal) applyRecord(f frame) error {
	switch f.Type {
	case RecImage:
		var ir imageRecord
		if err := decodePayload(f.Payload, &ir); err != nil {
			return err
		}
		j.applyImage(f.Ctx, ir)
	case RecContextCreated:
		j.ctx(f.Ctx)
	case RecContextDestroyed:
		delete(j.mirror, f.Ctx)
	case RecEntryWritten:
		var er entryRecord
		if err := decodePayload(f.Payload, &er); err != nil {
			return err
		}
		mc := j.ctx(f.Ctx)
		mc.entries[er.Entry.Virtual] = er.Entry
		if er.NextOff > mc.nextOff {
			mc.nextOff = er.NextOff
		}
	case RecEntryFreed:
		var fr freeRecord
		if err := decodePayload(f.Payload, &fr); err != nil {
			return err
		}
		if mc := j.mirror[f.Ctx]; mc != nil {
			delete(mc.entries, fr.Virtual)
		}
	case RecKernelCommitted:
		var kr kernelRecord
		if err := decodePayload(f.Payload, &kr); err != nil {
			return err
		}
		mc := j.ctx(f.Ctx)
		mc.pending = append(mc.pending, kr.Call)
	case RecCheckpoint:
		mc := j.ctx(f.Ctx)
		mc.pending = mc.pending[:0]
	default:
		// Unknown record types are skipped, not fatal: an older runtime
		// reading a newer journal loses only what it cannot understand.
	}
	return nil
}

// noteCtxID tracks the highest context ID observed anywhere in the log.
func (j *Journal) noteCtxID(rec *Recovered, id int64) {
	if id > rec.MaxCtxID {
		rec.MaxCtxID = id
	}
}

func sortInt64(ids []int64) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
}
