package ckptlog

// This file generalizes the journal's physical layer — the CRC-framed
// record format and its torn/corrupt classification — into an exported
// codec that other durable subsystems reuse. The control-plane store
// (internal/ctrlplane) is the first client: its keyed WAL shares this
// exact frame layout, so one fuzzer-hardened decoder backs both the
// checkpoint journal and the cluster store, and both inherit the same
// recovery discipline (truncate torn tails, quarantine corrupt
// payloads, never panic on disk bytes).

// RawFrame is one CRC-framed record as seen by an external client of
// the codec: Kind is the client-defined record type (must be non-zero —
// a zeroed frame can never masquerade as a real record), ID an opaque
// owner identifier (the journal uses the context ID; the cluster store
// leaves it 0), Seq the client's monotonic sequence number, and Payload
// the record body, integrity-checked separately from the header.
type RawFrame struct {
	Kind    uint8
	ID      int64
	Seq     uint64
	Payload []byte
}

// FrameResult classifies one DecodeRawFrame attempt, mirroring the
// journal's internal decode classification.
type FrameResult int

const (
	// FrameOK: a complete, fully verified frame.
	FrameOK FrameResult = iota
	// FrameTorn: the data ends mid-frame or the header is corrupt; the
	// extent of the frame is unknowable, so everything from its start
	// is a torn tail (truncate, never fatal).
	FrameTorn
	// FrameCorrupt: the header verified but the payload did not — the
	// record's owner can be quarantined and scanning can continue at
	// the next frame (n is valid).
	FrameCorrupt
)

// EncodeRawFrame appends the framed record to buf and returns it. The
// layout is the journal's: magic, kind, id, seq, length, header CRC-32C,
// payload, payload CRC-32C (see the frame layout comment in ckptlog.go).
func EncodeRawFrame(buf []byte, f RawFrame) []byte {
	return encodeFrame(buf, frame{Type: RecType(f.Kind), Ctx: f.ID, Seq: f.Seq, Payload: f.Payload})
}

// DecodeRawFrame decodes one frame from data. n is the number of bytes
// consumed (0 when torn). It never panics on arbitrary input — the
// decoder is fuzz-hardened by the journal's recovery fuzzer and the
// control-plane store's.
func DecodeRawFrame(data []byte) (f RawFrame, n int, res FrameResult) {
	fr, n, r := decodeFrame(data)
	f = RawFrame{Kind: uint8(fr.Type), ID: fr.Ctx, Seq: fr.Seq, Payload: fr.Payload}
	switch r {
	case decodeTorn:
		return f, n, FrameTorn
	case decodeCorruptPayload:
		return f, n, FrameCorrupt
	}
	return f, n, FrameOK
}

// SyncDir fsyncs a directory so a rename inside it is durable. Best
// effort: some filesystems refuse directory fsync.
func SyncDir(dir string) { syncDir(dir) }
