package ckptlog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gvrt/internal/api"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder: it must
// never panic, and every complete decode must re-encode to the bytes it
// consumed.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeFrame(nil, frame{Type: RecCheckpoint, Ctx: 7, Seq: 42}))
	f.Add(encodeFrame(nil, frame{Type: RecEntryWritten, Ctx: 1, Seq: 1, Payload: []byte("payload")}))
	corrupt := encodeFrame(nil, frame{Type: RecKernelCommitted, Ctx: 3, Seq: 9, Payload: []byte("kernel")})
	corrupt[frameHdrLen] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, res := decodeFrame(data)
		if n < 0 || n > len(data) {
			t.Fatalf("decodeFrame consumed %d of %d bytes", n, len(data))
		}
		switch res {
		case decodeOK:
			redone := encodeFrame(nil, fr)
			if string(redone) != string(data[:n]) {
				t.Fatalf("re-encode mismatch: %x != %x", redone, data[:n])
			}
		case decodeTorn:
			if n != 0 {
				t.Fatalf("torn decode consumed %d bytes", n)
			}
		}
	})
}

// FuzzDecodePayload feeds arbitrary bytes to the gob payload decoder for
// every record shape: a typed error or success, never a panic.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte{})
	if p, err := encodePayload(entryRecord{Entry: entry(0x100, "seed"), NextOff: 256}); err == nil {
		f.Add(p)
	}
	if p, err := encodePayload(kernelRecord{Call: launch("inc", 0x100)}); err == nil {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, v := range []any{
			new(headerRecord), new(imageRecord), new(entryRecord),
			new(freeRecord), new(kernelRecord),
		} {
			if err := decodePayload(data, v); err != nil && !errors.Is(err, api.ErrInvalidValue) {
				t.Fatalf("decodePayload(%T) = untyped error %v", v, err)
			}
		}
	})
}

// FuzzRecover writes arbitrary bytes as both snapshot and journal and
// runs full recovery: Open must either succeed (with repairs) or return
// a typed error, and never panic.
func FuzzRecover(f *testing.F) {
	seedDir := f.TempDir()
	j, _, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	j.ContextCreated(1)
	j.EntryWritten(1, entry(0x100, "seed"), 256)
	if err := j.KernelCommitted(1, launch("inc", 0x100)); err != nil {
		f.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		f.Fatal(err)
	}
	j.EntryWritten(1, entry(0x200, "tail"), 512)
	j.Sync()
	j.Close()
	snap, _ := os.ReadFile(filepath.Join(seedDir, snapshotName))
	wal, _ := os.ReadFile(filepath.Join(seedDir, journalName))
	f.Add(snap, wal)
	f.Add([]byte{}, wal)
	f.Add(snap, []byte{})

	f.Fuzz(func(t *testing.T, snapshot, journal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapshotName), snapshot, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journalName), journal, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := Open(dir, Options{})
		if err != nil {
			if !errors.Is(err, api.ErrInvalidValue) {
				t.Fatalf("Open = untyped error %v", err)
			}
			return
		}
		defer j.Close()
		// Whatever survived must be a journal that still accepts appends
		// and recovers to the same state on a second pass.
		j.EntryWritten(99, entry(0x900, "post"), 256)
		if err := j.Sync(); err != nil {
			t.Fatalf("post-recovery Sync: %v", err)
		}
		_ = rec
	})
}
