package resilience

import (
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
)

func TestTransientClassifier(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
		retryable bool
	}{
		{nil, false, false},
		{api.ErrNoDevice, true, true},
		{api.ErrDeviceUnavailable, true, true},
		{api.ErrOverloaded, true, true},
		{api.ErrConnectionClosed, true, false},
		{api.ErrDeadlineExceeded, true, false},
		{api.ErrLaunchFailure, false, false},
		{api.ErrInvalidDevicePointer, false, false},
		{api.ErrMemoryAllocation, false, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.transient {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.transient)
		}
		if got := RetryableCall(c.err); got != c.retryable {
			t.Errorf("RetryableCall(%v) = %v, want %v", c.err, got, c.retryable)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	const base, cap = 10 * time.Millisecond, 200 * time.Millisecond
	b := NewBackoff(base, cap, sim.NewRNG(7))
	envelope := base // upper bound of draw i is min(3*prev, cap)
	for i := 0; i < 50; i++ {
		hi := 3 * envelope
		if hi > cap {
			hi = cap
		}
		d := b.Next()
		if d < base || d > cap {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, base, cap)
		}
		if d > hi {
			t.Fatalf("draw %d: %v above envelope %v", i, d, hi)
		}
		envelope = d
	}
}

func TestBackoffDeterministicAndReset(t *testing.T) {
	seq := func() []time.Duration {
		b := NewBackoff(time.Millisecond, 100*time.Millisecond, sim.NewRNG(42))
		out := make([]time.Duration, 0, 10)
		for i := 0; i < 10; i++ {
			out = append(out, b.Next())
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}

	bo := NewBackoff(time.Millisecond, 100*time.Millisecond, sim.NewRNG(42))
	for i := 0; i < 10; i++ {
		bo.Next()
	}
	bo.Reset()
	if d := bo.Next(); d > 3*time.Millisecond {
		t.Fatalf("post-Reset draw %v above the initial 3*base envelope", d)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// No refill: exactly capacity tokens, ever — deterministic.
	b := NewBudget(3, 0, nil)
	for i := 0; i < 3; i++ {
		if !b.TrySpend() {
			t.Fatalf("spend %d refused with tokens left", i)
		}
	}
	for i := 0; i < 5; i++ {
		if b.TrySpend() {
			t.Fatal("spend granted from an empty budget")
		}
	}
	if b.Spent() != 3 || b.Denied() != 5 {
		t.Fatalf("spent=%d denied=%d, want 3/5", b.Spent(), b.Denied())
	}
}

func TestBudgetRefill(t *testing.T) {
	var now time.Duration
	b := NewBudget(2, 1, func() time.Duration { return now }) // 1 token per model second
	b.TrySpend()
	b.TrySpend()
	if b.TrySpend() {
		t.Fatal("budget not exhausted after capacity spends")
	}
	now += 1500 * time.Millisecond // refills 1.5 tokens
	if !b.TrySpend() {
		t.Fatal("refilled budget refused a spend")
	}
	if b.TrySpend() {
		t.Fatal("budget granted more than the refilled amount")
	}
	now += 10 * time.Second // cap at capacity, not unbounded
	if !b.TrySpend() || !b.TrySpend() {
		t.Fatal("capped refill refused capacity spends")
	}
	if b.TrySpend() {
		t.Fatal("budget exceeded its capacity after a long idle refill")
	}
}

func TestBreakerTransitions(t *testing.T) {
	var now time.Duration
	trips, heals := 0, 0
	b := NewBreaker("peer", 3, 100*time.Millisecond, func() time.Duration { return now })
	b.OnTransition(func() { trips++ }, func() { heals++ })

	if b.State() != BreakerClosed || !b.Allow() || !b.Ready() {
		t.Fatal("new breaker not closed/allowing")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen || trips != 1 {
		t.Fatalf("state after threshold = %v trips=%d, want open/1", b.State(), trips)
	}
	if b.Allow() || b.Ready() {
		t.Fatal("open breaker allowed traffic inside the cooldown")
	}

	now += 100 * time.Millisecond
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admit = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted during the half-open probe")
	}
	b.Failure() // probe failed: re-open, cooldown restarts
	if b.State() != BreakerOpen || trips != 2 {
		t.Fatalf("state after failed probe = %v trips=%d, want open/2", b.State(), trips)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed traffic before the new cooldown")
	}

	now += 100 * time.Millisecond
	if !b.Allow() {
		t.Fatal("second probe refused after cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed || heals != 1 {
		t.Fatalf("state after successful probe = %v heals=%d, want closed/1", b.State(), heals)
	}
	if !b.Ready() || b.Trips() != 2 {
		t.Fatalf("healed breaker: ready=%v trips=%d, want true/2", b.Ready(), b.Trips())
	}
}

func TestBreakerSuccessResetsFailures(t *testing.T) {
	b := NewBreaker("peer", 3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success() // consecutive counter must reset
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after interleaved success, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 3 consecutive failures, want open", b.State())
	}
}

func TestRetrierRetriesTransient(t *testing.T) {
	calls, retries := 0, 0
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 5,
		OnRetry:     func() { retries++ },
	})
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return api.ErrDeviceUnavailable
		}
		return nil
	})
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("err=%v calls=%d retries=%d, want nil/3/2", err, calls, retries)
	}
}

func TestRetrierPermanentErrorNoRetry(t *testing.T) {
	calls := 0
	r := NewRetrier(RetryPolicy{MaxAttempts: 5})
	err := r.Do(func() error {
		calls++
		return api.ErrInvalidDevicePointer
	})
	if api.Code(err) != api.ErrInvalidDevicePointer || calls != 1 {
		t.Fatalf("err=%v calls=%d, want permanent error after 1 call", err, calls)
	}
}

func TestRetrierBudgetExhaustion(t *testing.T) {
	calls := 0
	budget := NewBudget(2, 0, nil) // no refill: deterministic exhaustion
	r := NewRetrier(RetryPolicy{MaxAttempts: 10, Budget: budget})
	err := r.Do(func() error {
		calls++
		return api.ErrOverloaded
	})
	// First try is free; the budget grants exactly 2 retries.
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (1 free + 2 budgeted)", calls)
	}
	if api.Code(err) != api.ErrOverloaded {
		t.Fatalf("err = %v, want the operation's last error", err)
	}
	if budget.Denied() != 1 {
		t.Fatalf("denied = %d, want 1", budget.Denied())
	}
}

func TestRetrierDeterministicSleeps(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		r := NewRetrier(RetryPolicy{
			MaxAttempts: 6,
			RNG:         sim.NewRNG(99).Fork("retry"),
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		})
		_ = r.Do(func() error { return api.ErrOverloaded })
		return slept
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("sleep counts = %d/%d, want 5 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sleep %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
}
