// Package resilience holds the self-healing policy primitives the
// runtime composes into its defense-in-depth stack: an error classifier
// (transient vs. permanent), decorrelated-jitter exponential backoff, a
// token-bucket retry budget, a closed/open/half-open circuit breaker,
// and a retrier that ties them together.
//
// Everything here is model-time driven: clocks and sleeps are injected
// (usually sim.Clock.Now / sim.Clock.Sleep) and randomness comes from a
// seeded sim.RNG, so resilience behaviour replays deterministically
// under the chaos harness exactly like the faults it reacts to.
//
// The primitives are deliberately small and free of runtime knowledge;
// transport wires the deadline guard, cluster wires the breaker around
// its peer link, core wires admission control and device re-admission,
// and the frontend wires transparent retries.
package resilience

import (
	"sync"
	"sync/atomic"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
)

// Transient reports whether err is worth retrying: the condition it
// reports can clear on its own (a device came back, the breaker closed,
// load dropped) as opposed to a permanent fault of the call itself
// (bad pointer, unknown kernel, out-of-range argument).
func Transient(err error) bool {
	if err == nil {
		return false
	}
	switch api.Code(err) {
	case api.ErrNoDevice, api.ErrDeviceUnavailable, api.ErrOverloaded,
		api.ErrConnectionClosed, api.ErrDeadlineExceeded:
		return true
	case api.ErrFenced:
		// Explicitly permanent: the session's lease moved to another
		// node, so no retry on this connection can ever succeed — the
		// client must reconnect to the new owner and Resume. Spending
		// retry budget here would slow exactly the failover it should
		// be following.
		return false
	}
	return false
}

// RetryableCall reports whether err is transient AND left the
// connection intact, so the same Client can simply re-issue the call.
// Connection-level failures (closed, deadline-torn) are transient for a
// caller that can reconnect, but not for one holding the dead conn.
func RetryableCall(err error) bool {
	if !Transient(err) {
		return false
	}
	switch api.Code(err) {
	case api.ErrConnectionClosed, api.ErrDeadlineExceeded:
		return false
	}
	return true
}

// Backoff produces decorrelated-jitter exponential backoff delays:
// each delay is drawn uniformly from [base, prev*3], capped at cap.
// Jitter decorrelates retry storms from many clients; the growing upper
// envelope keeps pressure off a struggling resource. Not safe for
// concurrent use (give each goroutine its own, or guard externally).
type Backoff struct {
	base, cap time.Duration
	prev      time.Duration
	rng       *sim.RNG
}

// NewBackoff builds a backoff between base and cap, jittered by rng.
func NewBackoff(base, cap time.Duration, rng *sim.RNG) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	return &Backoff{base: base, cap: cap, prev: base, rng: rng}
}

// Next returns the next delay, in [base, cap].
func (b *Backoff) Next() time.Duration {
	hi := 3 * b.prev
	if hi > b.cap {
		hi = b.cap
	}
	d := b.base
	if hi > b.base {
		d += time.Duration(b.rng.Float64() * float64(hi-b.base))
	}
	b.prev = d
	return d
}

// Reset restores the initial (smallest) envelope after a success.
func (b *Backoff) Reset() { b.prev = b.base }

// Budget is a token-bucket retry budget shared by many callers: every
// retry spends one token, tokens refill at a bounded rate in model
// time. When an outage strikes N clients at once, the budget caps the
// cluster-wide retry amplification at the refill rate instead of N×
// the per-client retry count. Safe for concurrent use.
type Budget struct {
	mu            sync.Mutex
	tokens        float64
	capacity      float64
	refillPerSec  float64
	last          time.Duration
	now           func() time.Duration
	spent, denied atomic.Int64
}

// NewBudget builds a budget of capacity tokens refilling at
// refillPerSec tokens per model second, measured against now (usually
// sim.Clock.Now). A nil now or refillPerSec <= 0 disables refill: the
// bucket then holds exactly capacity tokens, ever.
func NewBudget(capacity int, refillPerSec float64, now func() time.Duration) *Budget {
	if capacity < 1 {
		capacity = 1
	}
	b := &Budget{tokens: float64(capacity), capacity: float64(capacity), refillPerSec: refillPerSec, now: now}
	if now != nil {
		b.last = now()
	}
	return b
}

// TrySpend takes one token, reporting whether the retry may proceed.
func (b *Budget) TrySpend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.now != nil && b.refillPerSec > 0 {
		now := b.now()
		if dt := now - b.last; dt > 0 {
			b.tokens += dt.Seconds() * b.refillPerSec
			if b.tokens > b.capacity {
				b.tokens = b.capacity
			}
		}
		b.last = now
	}
	if b.tokens < 1 {
		b.denied.Add(1)
		return false
	}
	b.tokens--
	b.spent.Add(1)
	return true
}

// Spent reports how many retries the budget has granted.
func (b *Budget) Spent() int64 { return b.spent.Load() }

// Denied reports how many retries the budget has refused.
func (b *Budget) Denied() int64 { return b.denied.Load() }

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides
	// between re-closing and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-link circuit breaker. Closed, it counts consecutive
// failures and trips open at the threshold; open, it refuses traffic
// for a cooldown; after the cooldown one caller is admitted half-open
// as a probe, and its outcome re-closes or re-trips the breaker.
// Safe for concurrent use.
type Breaker struct {
	name      string
	threshold int
	cooldown  time.Duration
	now       func() time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Duration
	probing  bool

	trips atomic.Int64
	// onTrip/onHeal fire outside the breaker lock, once per transition.
	onTrip, onHeal func()
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and allows a half-open probe cooldown model time later
// (now is usually sim.Clock.Now).
func NewBreaker(name string, threshold int, cooldown time.Duration, now func() time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 100 * time.Millisecond
	}
	return &Breaker{name: name, threshold: threshold, cooldown: cooldown, now: now}
}

// Name returns the link name the breaker guards.
func (b *Breaker) Name() string { return b.name }

// OnTransition registers callbacks fired when the breaker trips open
// (trip) and when it re-closes after having tripped (heal). Either may
// be nil. Call before the breaker is shared.
func (b *Breaker) OnTransition(trip, heal func()) { b.onTrip, b.onHeal = trip, heal }

// Allow reports whether a caller may use the link right now. Open
// breakers whose cooldown has elapsed transition to half-open and admit
// exactly one caller — the probe — until Success or Failure resolves it.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now != nil && b.now()-b.openedAt >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Ready reports whether the breaker is closed — the cheap load-signal
// check shouldOffload uses without consuming the half-open probe slot.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// Success records a successful use of the link: failures reset, and a
// half-open probe re-closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	healed := b.state != BreakerClosed
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	if healed && b.onHeal != nil {
		b.onHeal()
	}
}

// Failure records a failed use of the link. The breaker trips open at
// threshold consecutive closed-state failures, and immediately from
// half-open (the probe failed; restart the cooldown).
func (b *Breaker) Failure() {
	b.mu.Lock()
	tripped := false
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			tripped = true
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		tripped = true
	case BreakerOpen:
		// Late failures from calls in flight when the breaker tripped;
		// the cooldown restarts so the probe waits for quiet.
	}
	if tripped || b.state == BreakerOpen {
		if b.now != nil {
			b.openedAt = b.now()
		}
		b.probing = false
	}
	if tripped {
		b.trips.Add(1)
	}
	b.mu.Unlock()
	if tripped && b.onTrip != nil {
		b.onTrip()
	}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// Retrier retries an operation on transient errors, under a budget,
// with jittered backoff between attempts. Safe for concurrent use: the
// backoff state is guarded, and the budget is already concurrent.
type Retrier struct {
	maxAttempts int
	budget      *Budget
	sleep       func(time.Duration)
	retryIf     func(error) bool
	onRetry     func()

	mu      sync.Mutex
	backoff *Backoff
}

// RetryPolicy configures a Retrier. The zero value of any field picks a
// sensible default.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per operation (first call
	// included); 0 means 4.
	MaxAttempts int
	// BackoffBase/BackoffCap bound the jittered delay between tries;
	// zero means 10ms / 500ms of model time.
	BackoffBase, BackoffCap time.Duration
	// Budget, when set, is consulted before every retry (not the first
	// try); nil retries without a budget.
	Budget *Budget
	// RNG seeds the backoff jitter; nil uses a fixed seed.
	RNG *sim.RNG
	// Sleep realises backoff delays (usually sim.Clock.Sleep); nil
	// skips the delays.
	Sleep func(time.Duration)
	// RetryIf classifies retryable errors; nil means RetryableCall.
	RetryIf func(error) bool
	// OnRetry fires once per spent retry (metrics hook).
	OnRetry func()
}

// NewRetrier builds a retrier from the policy.
func NewRetrier(p RetryPolicy) *Retrier {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 10 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 500 * time.Millisecond
	}
	if p.RetryIf == nil {
		p.RetryIf = RetryableCall
	}
	return &Retrier{
		maxAttempts: p.MaxAttempts,
		budget:      p.Budget,
		sleep:       p.Sleep,
		retryIf:     p.RetryIf,
		onRetry:     p.OnRetry,
		backoff:     NewBackoff(p.BackoffBase, p.BackoffCap, p.RNG),
	}
}

// Do runs f, retrying on errors retryIf accepts, until success, a
// permanent error, attempt exhaustion, or budget exhaustion. The
// returned error is f's last error, so callers keep seeing CUDA codes.
func (r *Retrier) Do(f func() error) error {
	var err error
	for attempt := 0; attempt < r.maxAttempts; attempt++ {
		if attempt > 0 {
			if r.budget != nil && !r.budget.TrySpend() {
				return err
			}
			if r.onRetry != nil {
				r.onRetry()
			}
			if r.sleep != nil {
				r.mu.Lock()
				d := r.backoff.Next()
				r.mu.Unlock()
				r.sleep(d)
			}
		}
		if err = f(); err == nil {
			r.mu.Lock()
			r.backoff.Reset()
			r.mu.Unlock()
			return nil
		}
		if !r.retryIf(err) {
			return err
		}
	}
	return err
}
