// Package ptx analyses the pseudo-assembly representation of CUDA
// kernels the way the paper's runtime does (§1): "Both pointer nesting
// and dynamic device memory allocation can be detected by intercepting
// and parsing the pseudo-assembly (PTX) representation of CUDA kernels
// sent to the GPU devices."
//
// The analyser handles the subset of PTX relevant to those two
// questions:
//
//   - dynamic device-side allocation shows up as calls to the device
//     runtime's malloc/free entry points;
//   - pointer nesting shows up as a dependent global load chain: a
//     register produced by ld.global (a pointer fetched from memory)
//     that is later used as the address of another global load or
//     store.
//
// Fat binaries may carry PTX text per kernel; api.AnnotateFromPTX fills
// KernelMeta.UsesDynamicAlloc / UsesNestedPointers from it so the
// runtime can apply the paper's policies (exclude dynamic allocators
// from sharing; require nested registration) without programmer input.
package ptx

import (
	"strings"
)

// Analysis is the result of scanning one kernel's PTX.
type Analysis struct {
	// UsesDynamicAlloc reports device-side malloc/free calls.
	UsesDynamicAlloc bool
	// UsesNestedPointers reports dependent global load chains.
	UsesNestedPointers bool
	// Loads and Stores count global memory instructions (useful as a
	// crude intensity signal for schedulers).
	Loads, Stores int
	// Calls lists the named functions the kernel calls.
	Calls []string
}

// dynamicAllocTargets are the device-runtime entry points whose
// presence marks dynamic device allocation.
var dynamicAllocTargets = map[string]bool{
	"malloc":        true,
	"free":          true,
	"vprintf_alloc": true,
}

// Analyze scans PTX text. It is line-oriented and tolerant: anything it
// does not understand is skipped, so real-world PTX headers, directives
// and unknown instructions are harmless.
func Analyze(src string) Analysis {
	var a Analysis
	// Registers that hold pointer values fetched from global memory.
	loadedPtr := map[string]bool{}

	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, ".") {
			continue
		}
		line = strings.TrimSuffix(line, ";")

		switch {
		case strings.HasPrefix(line, "call"):
			name := calleeName(line)
			if name != "" {
				a.Calls = append(a.Calls, name)
				if dynamicAllocTargets[name] {
					a.UsesDynamicAlloc = true
				}
			}

		case strings.HasPrefix(line, "ld.global"):
			a.Loads++
			dst, addr := loadOperands(line)
			if addr != "" && loadedPtr[addr] {
				// Loading through a pointer that itself came from
				// global memory: a nested traversal.
				a.UsesNestedPointers = true
			}
			// A 64-bit global load may produce a pointer.
			if dst != "" && (strings.Contains(line, ".u64") || strings.Contains(line, ".s64") || strings.Contains(line, ".b64")) {
				loadedPtr[dst] = true
			}

		case strings.HasPrefix(line, "st.global"):
			a.Stores++
			_, addr := storeOperands(line)
			if addr != "" && loadedPtr[addr] {
				a.UsesNestedPointers = true
			}

		case strings.HasPrefix(line, "mov") || strings.HasPrefix(line, "add") ||
			strings.HasPrefix(line, "cvta"):
			// Pointer values propagate through moves, address
			// arithmetic and generic-address conversion.
			dst, src := twoOperands(line)
			if dst != "" && src != "" && loadedPtr[src] {
				loadedPtr[dst] = true
			}
		}
	}
	return a
}

// calleeName extracts the function name from a PTX call instruction,
// e.g. `call.uni (retval0), malloc, (param0)` or `call func, (p)`.
func calleeName(line string) string {
	rest := line[strings.Index(line, "call")+len("call"):]
	rest = strings.TrimLeft(rest, ".uni \t")
	// Skip an optional return-value tuple.
	if strings.HasPrefix(rest, "(") {
		if i := strings.Index(rest, ")"); i >= 0 {
			rest = strings.TrimLeft(rest[i+1:], ", \t")
		}
	}
	// The callee runs up to the next comma or end of line.
	if i := strings.IndexAny(rest, ",;( \t"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest)
}

// loadOperands parses `ld.global.u64 %rd1, [%rd2+8]` into (dst, base).
func loadOperands(line string) (dst, addr string) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", ""
	}
	dst = strings.TrimSuffix(fields[1], ",")
	addr = baseRegister(fields[2])
	return dst, addr
}

// storeOperands parses `st.global.u32 [%rd1], %r2` into (src, base).
func storeOperands(line string) (src, addr string) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", ""
	}
	addr = baseRegister(fields[1])
	src = strings.TrimSuffix(fields[2], ",")
	return src, addr
}

// twoOperands parses `mov.u64 %rd1, %rd2` / `add.s64 %rd1, %rd2, 8`
// into (dst, firstSrc).
func twoOperands(line string) (dst, src string) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return "", ""
	}
	dst = strings.TrimSuffix(fields[1], ",")
	src = strings.TrimSuffix(fields[2], ",")
	return dst, src
}

// baseRegister strips the addressing syntax `[%rd2+8]` to `%rd2`.
func baseRegister(tok string) string {
	tok = strings.TrimSuffix(strings.TrimPrefix(tok, "["), "],")
	tok = strings.TrimSuffix(tok, "]")
	if i := strings.IndexAny(tok, "+-"); i > 0 {
		tok = tok[:i]
	}
	return strings.TrimSpace(tok)
}
