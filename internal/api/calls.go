package api

import (
	"encoding/gob"
	"time"
)

// DevPtr is a device (or, under gvrt, virtual) memory address as seen by
// an application. 0 is the null pointer.
type DevPtr uint64

// Dim3 is a CUDA launch dimension.
type Dim3 struct{ X, Y, Z uint32 }

// Threads returns the total thread count of the dimension.
func (d Dim3) Threads() uint64 {
	x, y, z := uint64(d.X), uint64(d.Y), uint64(d.Z)
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// KernelMeta is the scheduling-relevant metadata extracted from a fat
// binary for one kernel function. The paper's runtime obtains the
// equivalent by parsing the PTX pseudo-assembly shipped in the binary
// (§1); here the "PTX" is the metadata itself.
type KernelMeta struct {
	// Name is the kernel's symbol name, unique within the fat binary.
	Name string
	// BaseTime is the kernel's execution time on the reference device
	// (Tesla C2050). Actual devices scale it by their relative speed.
	BaseTime time.Duration
	// UsesDynamicAlloc marks kernels that allocate device memory from
	// device code; such applications are served but excluded from
	// sharing and dynamic scheduling (paper §1).
	UsesDynamicAlloc bool
	// UsesNestedPointers marks kernels traversing nested structures;
	// their buffers must be registered via RegisterNested.
	UsesNestedPointers bool
	// PTX optionally carries the kernel's pseudo-assembly; when
	// present, AnnotateFromPTX derives the two flags above from it the
	// way the paper's runtime does (§1), so toolchains need not set
	// them by hand.
	PTX string
}

// FatBinary is the device code image an application registers before any
// other CUDA activity (__cudaRegisterFatBinary).
type FatBinary struct {
	// ID identifies the image; host-side kernel implementations are
	// looked up by (ID, kernel name) in the process-local registry.
	ID string
	// Kernels lists the kernel functions contained in the image.
	Kernels []KernelMeta
}

// Call is a single intercepted CUDA call travelling from the frontend to
// a runtime. Concrete types are registered with encoding/gob so the TCP
// transport can carry them.
type Call interface {
	// CallName returns the CUDA-level name of the call, for tracing.
	CallName() string
}

// RegisterFatBinaryCall mirrors __cudaRegisterFatBinary followed by the
// per-kernel __cudaRegisterFunction calls: it ships the whole image.
type RegisterFatBinaryCall struct{ Binary FatBinary }

// AllocKind distinguishes the CUDA allocation flavours.
type AllocKind int

// Allocation kinds carried by MallocCall.
const (
	// AllocLinear is a cudaMalloc linear allocation.
	AllocLinear AllocKind = iota
	// AllocPitched is a cudaMallocPitch allocation (rows padded to the
	// device's alignment).
	AllocPitched
	// AllocArray is a cudaMallocArray allocation.
	AllocArray
)

// MallocCall mirrors cudaMalloc / cudaMallocPitch / cudaMallocArray,
// distinguished by Kind. Size is the total byte size (already padded
// for pitched allocations).
type MallocCall struct {
	Size uint64
	Kind AllocKind
}

// FreeCall mirrors cudaFree.
type FreeCall struct{ Ptr DevPtr }

// MemsetCall mirrors cudaMemset: fill Size bytes at Dst with Value.
type MemsetCall struct {
	Dst   DevPtr
	Value byte
	Size  uint64
}

// MemcpyHDCall mirrors cudaMemcpy(..., cudaMemcpyHostToDevice). Data is
// the host source buffer (Dst may point mid-allocation; the runtime
// resolves it against the page table). When Data is nil the transfer is
// synthetic: Size bytes are moved for timing and accounting purposes
// but no real bytes are carried, which keeps multi-gigabyte modeled
// workloads cheap.
type MemcpyHDCall struct {
	Dst  DevPtr
	Data []byte
	Size uint64
}

// MemcpyDHCall mirrors cudaMemcpy(..., cudaMemcpyDeviceToHost).
type MemcpyDHCall struct {
	Src  DevPtr
	Size uint64
}

// MemcpyDDCall mirrors cudaMemcpy(..., cudaMemcpyDeviceToDevice).
type MemcpyDDCall struct {
	Dst, Src DevPtr
	Size     uint64
}

// LaunchCall mirrors cudaConfigureCall + cudaSetupArgument + cudaLaunch.
//
// Repeat compresses a back-to-back sequence of identical launches with
// no intervening CPU phase into one call: the device is occupied for
// Repeat kernel executions and per-call overhead is charged Repeat
// times. Scheduling decisions (binding, swapping) happen at call
// granularity in the paper too — between launches of a tight GPU phase
// there is no opportunity to unbind — so this compression preserves the
// behaviour while keeping the timed simulation efficient. Repeat <= 1
// means a single launch.
type LaunchCall struct {
	Kernel  string
	Grid    Dim3
	Block   Dim3
	PtrArgs []DevPtr
	Scalars []uint64
	Repeat  int
	// ReadOnly optionally marks pointer arguments the kernel only
	// reads (ReadOnly[i] corresponds to PtrArgs[i]). Absent this
	// information the runtime assumes every referenced buffer may be
	// modified (§4.5, Figure 4); providing it enables the paper's
	// finer-grained handling and cheaper swaps.
	ReadOnly []bool
}

// Launches returns the number of kernel executions the call represents.
func (c LaunchCall) Launches() int {
	if c.Repeat <= 1 {
		return 1
	}
	return c.Repeat
}

// SetDeviceCall mirrors cudaSetDevice. The gvrt runtime ignores it to
// keep device procurement abstracted (paper §4.3); the bare runtime
// honours it.
type SetDeviceCall struct{ Device int }

// GetDeviceCountCall mirrors cudaGetDeviceCount. The gvrt runtime
// overrides it to return the number of virtual GPUs (paper §4.3).
type GetDeviceCountCall struct{}

// SynchronizeCall mirrors cudaDeviceSynchronize/cudaThreadSynchronize.
type SynchronizeCall struct{}

// RegisterNestedCall is the gvrt-specific API through which programs
// declare nested data structures (paper §1, §4.5): Parent is the
// allocation holding the pointers, Members are the allocations pointed
// to, and Offsets[i] is the byte offset within Parent where the device
// address of Members[i] must be patched whenever Parent becomes
// device-resident.
type RegisterNestedCall struct {
	Parent  DevPtr
	Members []DevPtr
	Offsets []uint64
}

// SetAppIDCall is the CUDA 4.0 compatibility extension of §4.8: "each
// thread connection should carry the information about the
// corresponding application identifier. This information will be used
// to ensure that application threads sharing data are mapped onto the
// same device." Threads announcing the same non-empty AppID are bound
// to the same physical GPU and are excluded from independent migration.
type SetAppIDCall struct{ AppID string }

// SetTenantCall announces which tenant this application thread belongs
// to, for multi-tenant quota enforcement: once announced, the thread
// counts against the tenant's admitted-session cap, and its allocations
// against the tenant's aggregate byte cap (quotas are set through the
// control plane, see internal/ctrlplane). Announcing a tenant whose
// session cap is already full fails the call with ErrQuotaExceeded.
type SetTenantCall struct{ Tenant string }

// SetDeadlineCall announces a quality-of-service deadline for this
// application thread (§2: "Yet another scheduling policy may be adopted
// in the presence of expected quality of service requirements (e.g.:
// execution deadlines)"). Relative is the model time from now by which
// the thread hopes to finish; the EarliestDeadlineFirst policy orders
// the waiting list by it.
type SetDeadlineCall struct{ Relative time.Duration }

// GetSessionCall asks the runtime for this connection's session
// identifier, which names the context's persisted state across a full
// node restart (§4.6's BLCR-style capability).
type GetSessionCall struct{}

// ResumeCall re-attaches a fresh connection to the persisted memory
// state saved under ID before a node restart. It must be the
// connection's first memory-related call.
type ResumeCall struct{ ID int64 }

// CheckpointCall is the gvrt-specific explicit checkpoint request
// (paper §2, §4.6): it forces the swap copy of all dirty entries so the
// context can be restarted on another device without rerunning kernels.
type CheckpointCall struct{}

// PingCall is the cheapest possible round trip: it touches no context
// or device state. The cluster layer's half-open circuit-breaker probe
// uses it to test whether a partitioned peer link has healed without
// committing real work to a possibly-still-dead peer.
type PingCall struct{}

// MigrateCall asks the runtime to migrate this connection's session to
// the node listening at Target: checkpoint, export the sealed image,
// ship it chunk-by-chunk over a transport connection (failover wire
// protocol), and — on a committed import — depose the local copy so any
// later mutating call on this connection is fenced with ErrFenced. The
// client then reconnects to Target and Resumes under the same session
// ID.
type MigrateCall struct{ Target string }

// MigrateFrameCall carries one failover wire-protocol frame (hello /
// chunk / commit; see internal/failover) to a migration target. The
// reply's Data holds the response frame (need-set for hello, result for
// commit).
type MigrateFrameCall struct{ Frame []byte }

// AdoptCall is the failover promotion primitive: recover every session
// committed in the journal directory Dir — a dead owner's durable state
// on shared storage — into this runtime as orphan sessions that clients
// re-attach to with ResumeCall. Reply.Count reports how many sessions
// were adopted. The caller (cluster failover monitor, or an operator)
// must have fenced the old owner via the lease table first.
type AdoptCall struct{ Dir string }

// ExitCall announces the orderly end of an application thread; the
// runtime releases its context, page table and swap space.
type ExitCall struct{}

func (RegisterFatBinaryCall) CallName() string { return "__cudaRegisterFatBinary" }
func (MallocCall) CallName() string            { return "cudaMalloc" }
func (FreeCall) CallName() string              { return "cudaFree" }
func (MemsetCall) CallName() string            { return "cudaMemset" }
func (MemcpyHDCall) CallName() string          { return "cudaMemcpyHtoD" }
func (MemcpyDHCall) CallName() string          { return "cudaMemcpyDtoH" }
func (MemcpyDDCall) CallName() string          { return "cudaMemcpyDtoD" }
func (LaunchCall) CallName() string            { return "cudaLaunch" }
func (SetDeviceCall) CallName() string         { return "cudaSetDevice" }
func (GetDeviceCountCall) CallName() string    { return "cudaGetDeviceCount" }
func (SynchronizeCall) CallName() string       { return "cudaDeviceSynchronize" }
func (RegisterNestedCall) CallName() string    { return "gvrtRegisterNested" }
func (SetAppIDCall) CallName() string          { return "gvrtSetAppID" }
func (SetTenantCall) CallName() string         { return "gvrtSetTenant" }
func (SetDeadlineCall) CallName() string       { return "gvrtSetDeadline" }
func (GetSessionCall) CallName() string        { return "gvrtGetSession" }
func (ResumeCall) CallName() string            { return "gvrtResume" }
func (CheckpointCall) CallName() string        { return "gvrtCheckpoint" }
func (PingCall) CallName() string              { return "gvrtPing" }
func (MigrateCall) CallName() string           { return "gvrtMigrate" }
func (MigrateFrameCall) CallName() string      { return "gvrtMigrateFrame" }
func (AdoptCall) CallName() string             { return "gvrtAdopt" }
func (ExitCall) CallName() string              { return "gvrtExit" }

// Reply is the synchronous response to a Call.
type Reply struct {
	// Code is the CUDA result code; Success for an OK call.
	Code Error
	// Ptr returns the allocated pointer for MallocCall.
	Ptr DevPtr
	// Data returns the copied bytes for MemcpyDHCall.
	Data []byte
	// Count returns the device count for GetDeviceCountCall.
	Count int
	// ID returns the session identifier for GetSessionCall.
	ID int64
}

// HDCopy describes one transfer of a host→device batch: Data carries
// the real bytes (Size is then len(Data)) or, when nil, Size describes
// a synthetic timing-only transfer.
type HDCopy struct {
	Dst  DevPtr
	Data []byte
	Size uint64
}

// DHCopy describes one transfer of a device→host batch.
type DHCopy struct {
	Src  DevPtr
	Size uint64
}

// Envelope frames a call with a sequence number on the wire.
type Envelope struct {
	Seq  uint64
	Call Call
}

// ReplyEnvelope frames a reply with the sequence number of its call.
type ReplyEnvelope struct {
	Seq   uint64
	Reply Reply
}

// Reset clears the envelope for reuse from a pool. gob's Decode merges
// into whatever non-zero fields a value already holds, so a pooled
// envelope must be zeroed before every decode.
func (e *Envelope) Reset() { *e = Envelope{} }

// Reset clears the reply envelope for reuse from a pool. Reply.Data is
// dropped rather than truncated: decoded data escapes to the caller, so
// its backing array must never be shared across calls.
func (e *ReplyEnvelope) Reset() { *e = ReplyEnvelope{} }

func init() {
	gob.Register(RegisterFatBinaryCall{})
	gob.Register(MallocCall{})
	gob.Register(FreeCall{})
	gob.Register(MemsetCall{})
	gob.Register(MemcpyHDCall{})
	gob.Register(MemcpyDHCall{})
	gob.Register(MemcpyDDCall{})
	gob.Register(LaunchCall{})
	gob.Register(SetDeviceCall{})
	gob.Register(GetDeviceCountCall{})
	gob.Register(SynchronizeCall{})
	gob.Register(RegisterNestedCall{})
	gob.Register(SetAppIDCall{})
	gob.Register(SetTenantCall{})
	gob.Register(SetDeadlineCall{})
	gob.Register(GetSessionCall{})
	gob.Register(ResumeCall{})
	gob.Register(CheckpointCall{})
	gob.Register(PingCall{})
	gob.Register(MigrateCall{})
	gob.Register(MigrateFrameCall{})
	gob.Register(AdoptCall{})
	gob.Register(ExitCall{})
}
