package api

import (
	"encoding/gob"

	"gvrt/internal/trace"
)

// StatsCall asks a runtime daemon for its metrics snapshot — the
// operator-facing view of what the node is doing (the information §2
// suggests a node may expose to guide cluster-level scheduling:
// "number of GPUs, load level, etc.").
type StatsCall struct{}

// CallName implements Call.
func (StatsCall) CallName() string { return "gvrtStats" }

// DeviceStats is the per-device slice of RuntimeStats.
type DeviceStats struct {
	Index        int    `json:"index"`
	Name         string `json:"name"`
	Healthy      bool   `json:"healthy"`
	BusyNS       int64  `json:"busy_ns"`
	Launches     int64  `json:"launches"`
	H2DBytes     int64  `json:"h2d_bytes"`
	D2HBytes     int64  `json:"d2h_bytes"`
	ActiveVGPUs  int    `json:"active_vgpus"`
	VGPUs        int    `json:"vgpus"`
	MemAvailable uint64 `json:"mem_available"`
	Capacity     uint64 `json:"capacity"`
}

// TenantUsage is the per-tenant slice of RuntimeStats: every counter a
// multi-tenant operator needs to answer "which tenant is burning this
// resource?". Counters mirror their runtime-wide siblings exactly (same
// increment sites), so summing usage across tenants reproduces the
// node totals for any work done inside a tenant-joined session — the
// conservation property the cluster view is audited against.
type TenantUsage struct {
	// Sessions is the number of currently attached contexts.
	Sessions int64 `json:"sessions"`
	// Calls / Errors count calls served for the tenant's contexts and
	// how many returned an error.
	Calls  int64 `json:"calls"`
	Errors int64 `json:"errors"`
	// Launches counts kernel launches; GPUTimeNS is the modeled kernel
	// execution time attributed to them.
	Launches  int64 `json:"launches"`
	GPUTimeNS int64 `json:"gpu_time_ns"`
	// QueueWaitNS is total model time the tenant's calls spent parked
	// waiting for a free vGPU.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	// SwapBytes / SwapOps / CheckpointBytes / MigrationBytes /
	// DedupSavedBytes attribute the memory plane: swap-out spills,
	// checkpoint flushes, cross-node migration wire bytes, and host
	// bytes avoided by dedup for images the tenant owns.
	SwapBytes       int64 `json:"swap_bytes"`
	SwapOps         int64 `json:"swap_ops"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	MigrationBytes  int64 `json:"migration_bytes"`
	DedupSavedBytes int64 `json:"dedup_saved_bytes"`
	// FenceRejections counts the tenant's mutating calls rejected with
	// ErrFenced; QuotaRejects counts admissions and allocations the
	// tenant's quota refused (the per-tenant face of load shedding).
	FenceRejections int64 `json:"fence_rejections"`
	QuotaRejects    int64 `json:"quota_rejects"`
	// Launch / QueueWait are the tenant-scoped latency distributions
	// (model-time nanoseconds), mergeable across nodes.
	Launch    trace.HistSnapshot `json:"launch,omitempty"`
	QueueWait trace.HistSnapshot `json:"queue_wait,omitempty"`
}

// RuntimeStats is the wire form of a runtime's metrics snapshot,
// returned (JSON-encoded in Reply.Data) for a StatsCall.
type RuntimeStats struct {
	CallsServed   int64 `json:"calls_served"`
	Binds         int64 `json:"binds"`
	InterAppSwaps int64 `json:"inter_app_swaps"`
	IntraAppSwaps int64 `json:"intra_app_swaps"`
	SwapOps       int64 `json:"swap_ops"`
	SwapBytes     int64 `json:"swap_bytes"`
	// CheckpointBytes counts device→swap bytes moved by checkpoint
	// flushes; SwapBytes above counts only real swap-out spills.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// PrefetchIssued / PrefetchHits / PrefetchSkipped describe the
	// predictive prefetcher: speculative swap-ins completed, launches
	// that found their working set already resident because of one,
	// and predictions dropped (context busy, no memory, queue full).
	PrefetchIssued  int64 `json:"prefetch_issued"`
	PrefetchHits    int64 `json:"prefetch_hits"`
	PrefetchSkipped int64 `json:"prefetch_skipped"`
	// DedupHits / DedupSavedBytes / CowBreaks describe swap-area
	// content deduplication: chunks found already interned, bytes of
	// host occupancy currently avoided, and sealed images privatised
	// by a mutating access.
	DedupHits       int64 `json:"dedup_hits"`
	DedupSavedBytes int64 `json:"dedup_saved_bytes"`
	CowBreaks       int64 `json:"cow_breaks"`
	Migrations      int64 `json:"migrations"`
	// MigrationsStarted / MigrationsCompleted / MigrationsAborted count
	// cross-node context migrations (journaled image transfers plus
	// failover promotions), as opposed to Migrations above, which counts
	// intra-node device re-bindings (§5.3.4 load balancing).
	MigrationsStarted   int64 `json:"migrations_started"`
	MigrationsCompleted int64 `json:"migrations_completed"`
	MigrationsAborted   int64 `json:"migrations_aborted"`
	// FenceRejections counts mutating calls rejected with ErrFenced
	// because the session's lease epoch moved; LeaseRenewals counts
	// successful lease extensions piggybacked on served calls.
	FenceRejections int64 `json:"fence_rejections"`
	LeaseRenewals   int64 `json:"lease_renewals"`
	Recoveries      int64 `json:"recoveries"`
	Replays         int64 `json:"replays"`
	DeviceFailures  int64 `json:"device_failures"`
	Offloaded       int64 `json:"offloaded"`
	UnbindRetries   int64 `json:"unbind_retries"`
	BreakerTrips    int64 `json:"breaker_trips"`
	Readmissions    int64 `json:"readmissions"`
	RetriesSpent    int64 `json:"retries_spent"`
	Sheds           int64 `json:"sheds"`
	// GPUTimeNS is total modeled kernel execution time across all
	// contexts — the node-level total the per-tenant GPUTimeNS figures
	// are conserved against.
	GPUTimeNS    int64         `json:"gpu_time_ns"`
	QueueDepth   int           `json:"queue_depth"`
	LiveContexts int           `json:"live_contexts"`
	Devices      []DeviceStats `json:"devices"`
	// Tenants carries per-tenant attribution, keyed by tenant name.
	Tenants map[string]TenantUsage `json:"tenants,omitempty"`
	// Histograms carries latency/size distributions keyed by metric
	// name ("launch_latency", "queue_wait", "call.cudaLaunch", ...).
	// Values are model-time nanoseconds except journal_commit_wall
	// (wall nanoseconds) and swap_bytes (bytes).
	Histograms map[string]trace.HistSnapshot `json:"histograms,omitempty"`
}

func init() {
	gob.Register(StatsCall{})
}
