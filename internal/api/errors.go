// Package api defines the wire-level vocabulary shared by the frontend
// (intercept library), the gvrt runtime daemon, and the simulated CUDA
// runtime: device pointers, CUDA-style error codes, the call/reply
// envelope that travels over a connection, and the kernel metadata
// carried by fat binaries.
//
// Everything in this package is encoding/gob friendly so the same types
// serve the in-process transport and the TCP transport.
package api

import (
	"errors"
	"fmt"
)

// Error is a CUDA-style result code. The zero value is Success.
// Errors returned by the simulated CUDA runtime and by the gvrt runtime
// are drawn from the same space, mirroring how the paper's runtime
// forwards cudaError_t codes and adds its own (Table 1).
type Error int

// Result codes. The names and meanings follow cudaError_t where an
// equivalent exists; the gvrt-specific codes correspond to the error
// column of Table 1 in the paper.
const (
	Success Error = iota
	// ErrMemoryAllocation mirrors cudaErrorMemoryAllocation: the device
	// (or swap area) could not satisfy an allocation.
	ErrMemoryAllocation
	// ErrInvalidValue mirrors cudaErrorInvalidValue: a size/argument is
	// out of range, e.g. a transfer beyond the bounds of an allocation.
	ErrInvalidValue
	// ErrInvalidDevicePointer mirrors cudaErrorInvalidDevicePointer: no
	// valid page-table entry / allocation for the given pointer.
	ErrInvalidDevicePointer
	// ErrLaunchFailure mirrors cudaErrorLaunchFailure: a kernel failed.
	ErrLaunchFailure
	// ErrInvalidDevice mirrors cudaErrorInvalidDevice: bad device index.
	ErrInvalidDevice
	// ErrNoDevice mirrors cudaErrorNoDevice: no usable device remains.
	ErrNoDevice
	// ErrDeviceUnavailable reports that the bound device failed or was
	// removed while the call was in flight; the gvrt runtime recovers
	// contexts that observe it, the bare runtime does not.
	ErrDeviceUnavailable
	// ErrTooManyContexts reports the CUDA runtime's observed limit on
	// concurrent contexts (eight per device; see paper §1 and §5.3.1).
	ErrTooManyContexts
	// ErrRuntimeUnstable reports the bare CUDA runtime's observed
	// instability when more than eight concurrent client processes use
	// it (paper §5.3.2: "the CUDA runtime does not currently support
	// more than eight concurrent jobs stably").
	ErrRuntimeUnstable
	// ErrSwapAllocation reports that the host swap area could not be
	// grown (Table 1: "Swap memory cannot be allocated").
	ErrSwapAllocation
	// ErrSizeMismatch reports a host→swap copy whose size exceeds the
	// allocation (Table 1: "Swap-data size mismatch").
	ErrSizeMismatch
	// ErrNotRegistered reports a kernel launch for a function name that
	// was never registered via a fat binary.
	ErrNotRegistered
	// ErrUnsupported reports an operation the runtime deliberately
	// excludes, e.g. dynamic device-side allocation under sharing
	// (paper §1: such applications are excluded from sharing and
	// dynamic scheduling).
	ErrUnsupported
	// ErrConnectionClosed reports a torn connection between the
	// frontend and the runtime daemon.
	ErrConnectionClosed
	// ErrDeadlineExceeded reports a call that exceeded its model-time
	// deadline; the deadline guard tears the connection down, so no
	// stale reply can ever satisfy a later call.
	ErrDeadlineExceeded
	// ErrOverloaded reports fast admission-control rejection: the node's
	// projected queue exceeds its hard cap and no peer can absorb the
	// load, so the connection is refused instead of queued forever.
	ErrOverloaded
	// ErrSessionClaimed reports a Resume of a persisted session that
	// another connection already re-attached to: exactly one client wins
	// the race, every later claimant sees this code (distinct from
	// ErrInvalidValue, which means the session never existed).
	ErrSessionClaimed
	// ErrJournalFailure reports that the durability journal could not
	// persist a commit record: the operation's effects are NOT durable
	// and a crash may lose them, so the runtime refuses to acknowledge
	// the call as successful.
	ErrJournalFailure
	// ErrFenced reports a mutating operation issued under a session
	// lease this node no longer holds: ownership moved (failover or
	// migration bumped the lease epoch), so the deposed owner's write
	// is rejected instead of corrupting state it no longer owns. The
	// condition is permanent for this connection — retrying cannot
	// succeed; the client must reconnect to the new owner and Resume.
	ErrFenced
	// ErrQuotaExceeded reports a tenant quota violation: the tenant's
	// admitted-session cap or aggregate allocated-bytes cap (set through
	// the control plane) would be exceeded by this call.
	ErrQuotaExceeded
)

var errNames = map[Error]string{
	Success:                 "success",
	ErrMemoryAllocation:     "out of memory",
	ErrInvalidValue:         "invalid value",
	ErrInvalidDevicePointer: "invalid device pointer",
	ErrLaunchFailure:        "kernel launch failure",
	ErrInvalidDevice:        "invalid device ordinal",
	ErrNoDevice:             "no CUDA-capable device is available",
	ErrDeviceUnavailable:    "device unavailable",
	ErrTooManyContexts:      "too many concurrent contexts",
	ErrRuntimeUnstable:      "runtime unstable: too many concurrent client processes",
	ErrSwapAllocation:       "swap memory cannot be allocated",
	ErrSizeMismatch:         "swap-data size mismatch",
	ErrNotRegistered:        "kernel function not registered",
	ErrUnsupported:          "operation not supported under sharing",
	ErrConnectionClosed:     "connection closed",
	ErrDeadlineExceeded:     "call deadline exceeded",
	ErrOverloaded:           "node overloaded, admission refused",
	ErrSessionClaimed:       "session already resumed by another connection",
	ErrJournalFailure:       "durability journal write failed",
	ErrFenced:               "session lease lost, write fenced",
	ErrQuotaExceeded:        "tenant quota exceeded",
}

// Error implements the error interface. Success should never be wrapped
// in an error value; use Err to convert.
func (e Error) Error() string {
	if s, ok := errNames[e]; ok {
		return "cuda: " + s
	}
	return fmt.Sprintf("cuda: unknown error %d", int(e))
}

// Err converts a result code to a Go error: nil for Success, the code
// itself otherwise.
func (e Error) Err() error {
	if e == Success {
		return nil
	}
	return e
}

// Code extracts the result code from an error produced by this module:
// nil maps to Success, an api.Error anywhere in the wrap chain maps to
// itself, anything else to ErrLaunchFailure (the catch-all the CUDA
// runtime uses for unexpected internal failures).
func Code(err error) Error {
	if err == nil {
		return Success
	}
	var e Error
	if errors.As(err, &e) {
		return e
	}
	return ErrLaunchFailure
}
