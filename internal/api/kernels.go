package api

import (
	"fmt"
	"sync"
)

// KernelMemory gives a kernel implementation access to the device
// buffers named by its pointer arguments. Implementations see each
// argument's whole allocation as a byte slice, exactly as a real kernel
// sees raw device memory.
type KernelMemory interface {
	// Arg returns the backing bytes of the i-th pointer argument,
	// starting at the argument's offset within its allocation. Mutations
	// are visible to subsequent kernels and to device→host copies.
	Arg(i int) ([]byte, error)
}

// KernelFunc is the host-side implementation of a kernel's data
// transformation. It stands in for the device machine code inside a fat
// binary: when present, launching the kernel also applies the
// transformation to the (simulated) device buffers, so applications
// observe real data flow end-to-end. Timing is modeled separately by
// KernelMeta.BaseTime; a KernelFunc must not sleep.
//
// A nil implementation is legal: the launch is then timing-only, which
// is all the paper's evaluation requires.
type KernelFunc func(mem KernelMemory, scalars []uint64) error

// kernel implementations are process-local, keyed by fat-binary ID and
// kernel name — the moral equivalent of the device code being present
// wherever the fat binary has been shipped. Both the client process and
// a daemon process link the same workload package, so both sides have
// the registry populated, mirroring how real fat binaries travel with
// the application to whichever node executes them.
var (
	implMu sync.RWMutex
	impls  = make(map[string]KernelFunc)
)

func implKey(binaryID, kernel string) string { return binaryID + "\x00" + kernel }

// RegisterKernelImpl installs the host-side implementation for kernel
// name within fat binary binaryID. Passing nil removes a previous
// registration. Re-registering an identical name is allowed (packages
// may be initialised once per process but described in several places).
func RegisterKernelImpl(binaryID, kernel string, fn KernelFunc) {
	implMu.Lock()
	defer implMu.Unlock()
	if fn == nil {
		delete(impls, implKey(binaryID, kernel))
		return
	}
	impls[implKey(binaryID, kernel)] = fn
}

// KernelImpl looks up the host-side implementation for a kernel; the
// second result reports whether one is registered.
func KernelImpl(binaryID, kernel string) (KernelFunc, bool) {
	implMu.RLock()
	defer implMu.RUnlock()
	fn, ok := impls[implKey(binaryID, kernel)]
	return fn, ok
}

// FindKernel returns the metadata for a kernel name within a binary.
func (fb *FatBinary) FindKernel(name string) (KernelMeta, error) {
	for _, k := range fb.Kernels {
		if k.Name == name {
			return k, nil
		}
	}
	return KernelMeta{}, fmt.Errorf("fat binary %q: kernel %q not registered: %w", fb.ID, name, ErrNotRegistered)
}
