package api

import "gvrt/internal/ptx"

// AnnotateFromPTX fills each kernel's UsesDynamicAlloc and
// UsesNestedPointers flags by analysing its PTX text, when present
// (§1: both properties "can be detected by intercepting and parsing
// the pseudo-assembly (PTX) representation of CUDA kernels"). Flags
// already set by hand are never cleared.
func AnnotateFromPTX(fb *FatBinary) {
	for i := range fb.Kernels {
		k := &fb.Kernels[i]
		if k.PTX == "" {
			continue
		}
		a := ptx.Analyze(k.PTX)
		if a.UsesDynamicAlloc {
			k.UsesDynamicAlloc = true
		}
		if a.UsesNestedPointers {
			k.UsesNestedPointers = true
		}
	}
}
