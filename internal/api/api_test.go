package api

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
	"time"
)

func TestErrorStringsAndErr(t *testing.T) {
	if Success.Err() != nil {
		t.Error("Success.Err() should be nil")
	}
	if err := ErrMemoryAllocation.Err(); err == nil || err.Error() != "cuda: out of memory" {
		t.Errorf("ErrMemoryAllocation.Err() = %v", err)
	}
	if s := Error(9999).Error(); s == "" {
		t.Error("unknown error code should still produce a message")
	}
	for code := Success; code <= ErrConnectionClosed; code++ {
		if _, ok := errNames[code]; !ok {
			t.Errorf("error code %d has no name", code)
		}
	}
}

func TestCode(t *testing.T) {
	if Code(nil) != Success {
		t.Error("Code(nil) != Success")
	}
	if Code(ErrInvalidValue) != ErrInvalidValue {
		t.Error("Code should pass through api.Error")
	}
	if Code(errors.New("boom")) != ErrLaunchFailure {
		t.Error("Code should map foreign errors to ErrLaunchFailure")
	}
}

func TestDim3Threads(t *testing.T) {
	tests := []struct {
		d    Dim3
		want uint64
	}{
		{Dim3{}, 1},
		{Dim3{X: 4}, 4},
		{Dim3{X: 4, Y: 2}, 8},
		{Dim3{X: 4, Y: 2, Z: 3}, 24},
		{Dim3{X: 0, Y: 5}, 5},
	}
	for _, tt := range tests {
		if got := tt.d.Threads(); got != tt.want {
			t.Errorf("%+v.Threads() = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestLaunchCallLaunches(t *testing.T) {
	if (LaunchCall{}).Launches() != 1 {
		t.Error("zero Repeat should mean one launch")
	}
	if (LaunchCall{Repeat: -3}).Launches() != 1 {
		t.Error("negative Repeat should mean one launch")
	}
	if (LaunchCall{Repeat: 17}).Launches() != 17 {
		t.Error("Repeat=17 should mean 17 launches")
	}
}

func TestEnvelopeGobRoundTrip(t *testing.T) {
	calls := []Call{
		RegisterFatBinaryCall{Binary: FatBinary{
			ID:      "bin1",
			Kernels: []KernelMeta{{Name: "k", BaseTime: 3 * time.Millisecond}},
		}},
		MallocCall{Size: 1 << 20},
		MallocCall{Size: 1 << 20, Kind: AllocPitched},
		FreeCall{Ptr: 0xdead},
		MemsetCall{Dst: 0x1000, Value: 7, Size: 64},
		MemcpyHDCall{Dst: 0x1000, Data: []byte{1, 2, 3}},
		MemcpyDHCall{Src: 0x1000, Size: 3},
		MemcpyDDCall{Dst: 1, Src: 2, Size: 3},
		LaunchCall{Kernel: "k", Grid: Dim3{X: 2}, Block: Dim3{X: 32}, PtrArgs: []DevPtr{0x1000}, Scalars: []uint64{7}, Repeat: 4},
		SetDeviceCall{Device: 2},
		GetDeviceCountCall{},
		SynchronizeCall{},
		RegisterNestedCall{Parent: 1, Members: []DevPtr{2, 3}, Offsets: []uint64{0, 8}},
		SetAppIDCall{AppID: "app-1"},
		GetSessionCall{},
		ResumeCall{ID: 42},
		CheckpointCall{},
		ExitCall{},
	}
	for _, c := range calls {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&Envelope{Seq: 9, Call: c}); err != nil {
			t.Fatalf("encode %s: %v", c.CallName(), err)
		}
		var out Envelope
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode %s: %v", c.CallName(), err)
		}
		if out.Seq != 9 {
			t.Errorf("%s: Seq = %d, want 9", c.CallName(), out.Seq)
		}
		if out.Call.CallName() != c.CallName() {
			t.Errorf("round-trip changed call type: %s -> %s", c.CallName(), out.Call.CallName())
		}
	}
}

func TestReplyEnvelopeGob(t *testing.T) {
	var buf bytes.Buffer
	in := ReplyEnvelope{Seq: 3, Reply: Reply{Code: ErrInvalidValue, Ptr: 0x42, Data: []byte{9}, Count: 4}}
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out ReplyEnvelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != 3 || out.Reply.Code != ErrInvalidValue || out.Reply.Ptr != 0x42 || out.Reply.Count != 4 || len(out.Reply.Data) != 1 {
		t.Errorf("round trip mangled reply: %+v", out)
	}
}

func TestKernelImplRegistry(t *testing.T) {
	called := false
	RegisterKernelImpl("binX", "vecadd", func(mem KernelMemory, scalars []uint64) error {
		called = true
		return nil
	})
	defer RegisterKernelImpl("binX", "vecadd", nil)

	fn, ok := KernelImpl("binX", "vecadd")
	if !ok {
		t.Fatal("registered kernel impl not found")
	}
	if err := fn(nil, nil); err != nil || !called {
		t.Error("impl did not run")
	}
	if _, ok := KernelImpl("binX", "other"); ok {
		t.Error("unregistered kernel impl reported found")
	}
	RegisterKernelImpl("binX", "vecadd", nil)
	if _, ok := KernelImpl("binX", "vecadd"); ok {
		t.Error("nil registration should remove the impl")
	}
}

func TestFindKernel(t *testing.T) {
	fb := FatBinary{ID: "b", Kernels: []KernelMeta{{Name: "a"}, {Name: "b", BaseTime: time.Second}}}
	k, err := fb.FindKernel("b")
	if err != nil || k.BaseTime != time.Second {
		t.Errorf("FindKernel(b) = %+v, %v", k, err)
	}
	if _, err := fb.FindKernel("zzz"); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("FindKernel(zzz) err = %v, want ErrNotRegistered", err)
	}
}

func TestAnnotateFromPTX(t *testing.T) {
	fb := FatBinary{ID: "b", Kernels: []KernelMeta{
		{Name: "plain", PTX: "ld.global.f32 %f1, [%rd1];"},
		{Name: "alloc", PTX: "call.uni (r), malloc, (%rd1);"},
		{Name: "nested", PTX: "ld.global.u64 %rd2, [%rd1];\nld.global.u32 %r1, [%rd2];"},
		{Name: "preset", UsesDynamicAlloc: true}, // no PTX: flag kept
	}}
	AnnotateFromPTX(&fb)
	if fb.Kernels[0].UsesDynamicAlloc || fb.Kernels[0].UsesNestedPointers {
		t.Error("plain kernel mis-annotated")
	}
	if !fb.Kernels[1].UsesDynamicAlloc {
		t.Error("malloc call not annotated")
	}
	if !fb.Kernels[2].UsesNestedPointers {
		t.Error("nested loads not annotated")
	}
	if !fb.Kernels[3].UsesDynamicAlloc {
		t.Error("hand-set flag lost")
	}
}
