package api

import "encoding/gob"

// WithSpan wraps a forwarded call with the forwarder's span ID so the
// serving node can parent its per-call spans under the hop that sent
// them — this is how a kernel launch's causal trace crosses an
// offload boundary (§4.7). The wrapper travels over both the gob TCP
// transport and the in-process pipe; runtimes unwrap it on receipt,
// so application frontends never see it.
type WithSpan struct {
	// Parent is the forwarder's span ID (trace.SpanID), zero for none.
	Parent uint64
	// Call is the wrapped call.
	Call Call
}

// CallName implements Call by delegating to the wrapped call.
func (w WithSpan) CallName() string {
	if w.Call == nil {
		return "gvrtWithSpan"
	}
	return w.Call.CallName()
}

// Unwrap returns the innermost call and the outermost parent span ID.
func (w WithSpan) Unwrap() (Call, uint64) {
	call, parent := w.Call, w.Parent
	for {
		inner, ok := call.(WithSpan)
		if !ok {
			return call, parent
		}
		call = inner.Call
	}
}

func init() {
	gob.Register(WithSpan{})
}
