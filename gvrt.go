// Package gvrt is a virtual-memory based runtime for GPU multi-tenancy
// — a full reimplementation, over a simulated CUDA stack, of the system
// described in Becchi et al., "A Virtual Memory Based Runtime to
// Support Multi-tenancy in Clusters with GPUs" (HPDC 2012).
//
// # Architecture
//
// Applications link the intercept Client (package frontend behind this
// façade) instead of the CUDA runtime; every CUDA call travels over a
// connection to a node-level Runtime daemon, which owns the node's GPUs
// through a configurable number of virtual GPUs per device. A memory
// manager gives each application virtual device pointers backed by a
// host-side swap area, making application→GPU binding dynamic: the
// runtime time-shares GPUs between applications whose aggregate memory
// needs exceed device capacity (inter-application swap), runs
// applications whose own footprint exceeds the device (intra-application
// swap), migrates applications from slow to fast GPUs, survives GPU
// failures by replaying kernels from the last checkpoint, and offloads
// excess application threads to peer nodes.
//
// # Quick start
//
//	clock := gvrt.NewClock(0.001) // 1 model second = 1 wall ms
//	dev := gvrt.NewDevice(0, gvrt.TeslaC2050, clock)
//	crt := gvrt.NewCUDARuntime(clock, dev)
//	rt, err := gvrt.NewRuntime(crt, gvrt.Config{})
//	...
//	conn, serverConn := gvrt.Pipe()
//	go rt.Serve(serverConn)
//	client := gvrt.Connect(conn)
//	ptr, err := client.Malloc(1 << 20)
//
// See examples/ for complete programs and cmd/benchrun for the
// reproduction of the paper's evaluation.
//
// # Model time
//
// All durations are model time executed as scaled wall time through a
// Clock; the hardware model (device speeds, memory sizes, PCIe
// bandwidth, CUDA limits) is documented in DESIGN.md.
package gvrt

import (
	"io"
	"net/http"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/benchfmt"
	"gvrt/internal/ckptlog"
	"gvrt/internal/cluster"
	"gvrt/internal/core"
	"gvrt/internal/ctrlplane"
	"gvrt/internal/cudart"
	"gvrt/internal/failover"
	"gvrt/internal/faultinject"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/memmgr"
	"gvrt/internal/obs"
	"gvrt/internal/opserver"
	"gvrt/internal/resilience"
	"gvrt/internal/sched"
	"gvrt/internal/sim"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
	"gvrt/internal/workload"
)

// Core types.
type (
	// Runtime is the gvrt node-level runtime daemon (paper §4).
	Runtime = core.Runtime
	// Config tunes a Runtime; the zero value is the paper's evaluation
	// configuration (4 vGPUs per device, FCFS, transfer deferral).
	Config = core.Config
	// Metrics is a snapshot of a Runtime's counters.
	Metrics = core.Metrics
	// Client is the application-side intercept library: one Client per
	// application thread.
	Client = frontend.Client
	// Clock is the model-time clock everything runs on.
	Clock = sim.Clock
	// RNG is a deterministic random source for workload generation.
	RNG = sim.RNG
)

// Benchmark-trajectory types (cmd/gvrt-bench; EXPERIMENTS.md "BENCH
// reports").
type (
	// BenchReport is the schema of a BENCH_<n>.json throughput report.
	BenchReport = benchfmt.Report
	// BenchScenario is one scenario's row inside a BenchReport.
	BenchScenario = benchfmt.Scenario
)

// ValidateBenchReport checks a decoded BENCH report for schema
// completeness (every scenario named, rates positive, percentiles
// ordered).
func ValidateBenchReport(r *BenchReport) error { return benchfmt.Validate(r) }

// ReadBenchReport loads and validates a BENCH_<n>.json file.
func ReadBenchReport(path string) (*BenchReport, error) { return benchfmt.ReadFile(path) }

// Hardware and CUDA substrate types.
type (
	// Device is one simulated GPU.
	Device = gpu.Device
	// DeviceSpec describes a GPU model.
	DeviceSpec = gpu.Spec
	// DeviceStats is a snapshot of a device's activity counters.
	DeviceStats = gpu.Stats
	// CUDARuntime is the simulated CUDA driver+runtime a Runtime is
	// built on (and the baseline applications can run against).
	CUDARuntime = cudart.Runtime
	// CUDAContext is a bare CUDA context on one device.
	CUDAContext = cudart.Context
)

// Wire-level types.
type (
	// DevPtr is a (virtual) device pointer.
	DevPtr = api.DevPtr
	// Dim3 is a CUDA launch dimension.
	Dim3 = api.Dim3
	// FatBinary carries an application's kernels.
	FatBinary = api.FatBinary
	// KernelMeta describes one kernel.
	KernelMeta = api.KernelMeta
	// KernelFunc is a host-side kernel implementation operating on
	// simulated device memory.
	KernelFunc = api.KernelFunc
	// KernelMemory gives a KernelFunc access to its buffers.
	KernelMemory = api.KernelMemory
	// LaunchCall is a kernel launch request.
	LaunchCall = api.LaunchCall
	// Error is a CUDA-style result code.
	Error = api.Error
	// RuntimeStats is the wire form of a daemon's metrics snapshot
	// (Client.Stats).
	RuntimeStats = api.RuntimeStats
	// DeviceWireStats is the per-device slice of RuntimeStats. (The
	// richer local view of a gpu.Device is DeviceStats.)
	DeviceWireStats = api.DeviceStats
	// Conn is the client side of a runtime connection.
	Conn = transport.Conn
	// ServerConn is the runtime side of a connection.
	ServerConn = transport.ServerConn
	// Listener accepts runtime connections over TCP.
	Listener = transport.Listener
)

// Scheduling policy types (paper §2 "Configurable Scheduling").
type (
	// Policy decides device choice and waiting-list order.
	Policy = sched.Policy
	// FCFS is first-come-first-served with balanced device choice.
	FCFS = sched.FCFS
	// ShortestJobFirst favours the shortest pending kernel.
	ShortestJobFirst = sched.ShortestJobFirst
	// CreditBased favours contexts that consumed the least GPU time.
	CreditBased = sched.CreditBased
	// EarliestDeadlineFirst serves the tightest declared QoS deadline
	// first (Client.SetDeadline).
	EarliestDeadlineFirst = sched.EarliestDeadlineFirst
)

// Workload and cluster types.
type (
	// App is one benchmark application trace (paper Table 2).
	App = workload.App
	// BatchResult aggregates a concurrent batch run.
	BatchResult = workload.BatchResult
	// CUDAClient is the call surface an App needs; both Client and the
	// bare-runtime adapter satisfy it.
	CUDAClient = workload.CUDA
	// ClusterNode is one compute node (devices + runtimes).
	ClusterNode = cluster.Node
	// ClusterHead is the TORQUE-like resource manager.
	ClusterHead = cluster.Head
	// MemoryStats is a snapshot of the memory manager's counters.
	MemoryStats = memmgr.Stats
)

// Tracing types: plug a TraceRecorder into Config.Trace to capture the
// runtime's scheduling decisions (bindings, swaps, migrations,
// failures, recoveries, offloads) as structured events.
type (
	// TraceRecorder is a bounded ring buffer of runtime events.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded runtime event.
	TraceEvent = trace.Event
	// TraceKind classifies a TraceEvent.
	TraceKind = trace.Kind
)

// Trace event kinds.
const (
	TraceConnect     = trace.KindConnect
	TraceBind        = trace.KindBind
	TraceUnbind      = trace.KindUnbind
	TraceIntraSwap   = trace.KindIntraSwap
	TraceInterSwap   = trace.KindInterSwap
	TraceMigration   = trace.KindMigration
	TraceCheckpoint  = trace.KindCheckpoint
	TraceFailure     = trace.KindFailure
	TraceRecovery    = trace.KindRecovery
	TraceOffload     = trace.KindOffload
	TraceShed        = trace.KindShed
	TraceBreakerTrip = trace.KindBreakerTrip
	TraceBreakerHeal = trace.KindBreakerHeal
	TraceExit        = trace.KindExit
	TraceFence       = trace.KindFence
	TraceCrossMig    = trace.KindCrossMigration
)

// Causal-span and histogram types (DESIGN.md §10): a Runtime with a
// TraceRecorder decomposes every served call into parented phase spans
// (queue-wait, bind, swap-in, h2d, launch, ...), and always records
// log2-bucketed latency histograms served in RuntimeStats.Histograms.
type (
	// Span is one timed phase of runtime work, in model time.
	Span = trace.Span
	// SpanID identifies a Span; it travels across offload hops so a
	// peer's spans parent to the head node's offload span.
	SpanID = trace.SpanID
	// HistSnapshot is a point-in-time copy of a latency histogram
	// (RuntimeStats.Histograms values); Delta + Quantile give interval
	// percentiles.
	HistSnapshot = trace.HistSnapshot
	// ChromeProcess groups one node's spans and events for
	// WriteChromeTrace.
	ChromeProcess = trace.ChromeProcess
)

// NewTraceRecorder creates a recorder retaining the most recent
// capacity events.
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// WriteChromeTrace renders spans and events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. Pass one
// ChromeProcess per node; parent links that cross nodes (offload hops)
// are drawn as flow arrows.
func WriteChromeTrace(w io.Writer, procs ...ChromeProcess) error {
	return trace.WriteChromeTrace(w, procs...)
}

// HistogramBucketBound returns the exclusive upper bound of log2
// histogram bucket i, shared by every HistSnapshot.
func HistogramBucketBound(i int) int64 { return trace.BucketBound(i) }

// OpsSource is the slice of a runtime the HTTP operator plane reads.
type OpsSource = opserver.Source

// NewOpsHandler builds the HTTP operator plane (/metrics Prometheus
// text, /statusz, /tracez, /trace.json, /debug/pprof) from a source.
func NewOpsHandler(src OpsSource) http.Handler { return opserver.Handler(src) }

// OpsHandlerFor builds the operator plane for a runtime; name labels
// the process in /trace.json exports.
func OpsHandlerFor(rt *Runtime, name string) http.Handler {
	return opserver.Handler(opserver.Source{
		Stats: rt.StatsSnapshot,
		Trace: rt.TraceRecorder(),
		Now:   rt.Clock().Now,
		Name:  name,
	})
}

// Cluster-scoped observability (DESIGN.md §15): per-tenant attribution,
// fleet-wide metric aggregation, SLO burn-rate evaluation and the
// crash flight recorder.
type (
	// TenantUsage is one tenant's cumulative attributed usage on a
	// node (RuntimeStats.Tenants values) or across a fleet merge.
	TenantUsage = api.TenantUsage
	// FleetCollector pulls peer stats snapshots and merges them into a
	// cluster-scoped view.
	FleetCollector = obs.Collector
	// ClusterStats is one fleet collection: per-node snapshots, the
	// merged rollup, and the peers that could not be reached.
	ClusterStats = obs.ClusterStats
	// SLOEngine evaluates per-tenant objectives as multi-window burn
	// rates over usage snapshots.
	SLOEngine = obs.SLOEngine
	// SLOEngineOptions configures an SLOEngine.
	SLOEngineOptions = obs.SLOEngineOptions
	// SLOObjective is one tenant's service-level objective.
	SLOObjective = obs.Objective
	// SLOStatus is the evaluated state of one tenant/kind pair.
	SLOStatus = obs.SLOStatus
	// SLOEvent is published on alert-state transitions.
	SLOEvent = obs.SLOEvent
	// FlightRecorder is a node's bounded black-box event ring, dumped
	// atomically on panics, fence/breaker storms and armed crashes.
	FlightRecorder = obs.FlightRecorder
	// FlightDump is one post-mortem dump a FlightRecorder wrote.
	FlightDump = obs.FlightDump
	// FlightRecord is one entry of a FlightDump's ring.
	FlightRecord = obs.FlightRecord
)

// NewFleetCollector builds a collector over the local runtime's stats;
// add peers with AddPeer. cluster.FleetCollector wires one up for an
// in-process Head.
func NewFleetCollector(self string, local func() RuntimeStats) *FleetCollector {
	return obs.NewCollector(self, local)
}

// MergeRuntimeStats folds src's counters, histograms and tenant usage
// into dst, returning the merge. Per-device rows are dropped — device
// indexes are node-local and would collide.
func MergeRuntimeStats(dst, src RuntimeStats) RuntimeStats { return obs.MergeStats(dst, src) }

// NewSLOEngine builds a burn-rate engine; Objectives and Usage are
// required.
func NewSLOEngine(opts SLOEngineOptions) *SLOEngine { return obs.NewSLOEngine(opts) }

// NewFlightRecorder builds a flight recorder for node, dumping into
// dir; capacity <= 0 selects the default ring size.
func NewFlightRecorder(node, dir string, capacity int) *FlightRecorder {
	return obs.NewFlightRecorder(node, dir, capacity)
}

// ReadFlightDump loads and schema-checks a flight-recorder dump.
func ReadFlightDump(path string) (*FlightDump, error) { return obs.ReadFlightDump(path) }

// Fault-injection types: arm Config.Faults with a FaultPlane built from
// a seeded FaultPlan and the runtime injects deterministic, replayable
// faults at every layer (devices, swap area, dispatcher, cluster
// links). See cmd/gvrt-chaos and EXPERIMENTS.md for the workflow.
type (
	// FaultPlane is an armed FaultPlan the runtime layers consult.
	FaultPlane = faultinject.Plane
	// FaultPlan is a named, seeded set of fault rules.
	FaultPlan = faultinject.Plan
	// FaultRule arms one fault at one injection point.
	FaultRule = faultinject.Rule
	// FaultPoint names a class of injection sites.
	FaultPoint = faultinject.Point
	// FaultFired is one entry of a plane's fired-fault schedule.
	FaultFired = faultinject.Fired
)

// Fault injection points.
const (
	FaultTransportCall   = faultinject.PointTransportCall
	FaultClusterLink     = faultinject.PointClusterLink
	FaultDeviceExec      = faultinject.PointDeviceExec
	FaultDeviceDMA       = faultinject.PointDeviceDMA
	FaultDeviceMalloc    = faultinject.PointDeviceMalloc
	FaultSwapWrite       = faultinject.PointSwapWrite
	FaultSwapAlloc       = faultinject.PointSwapAlloc
	FaultDispatch        = faultinject.PointDispatch
	FaultJournalPreSync  = faultinject.PointJournalPreSync
	FaultJournalPostSync = faultinject.PointJournalPostSync
	FaultJournalCompact  = faultinject.PointJournalCompact
	FaultLeaseCheck      = faultinject.PointLeaseCheck
	FaultMigrateTransfer = faultinject.PointMigrateTransfer
	FaultMigrateImport   = faultinject.PointMigrateImport
	FaultStorePreSync    = faultinject.PointStorePreSync
	FaultStorePostSync   = faultinject.PointStorePostSync
	FaultStoreCompact    = faultinject.PointStoreCompact
	FaultCtrlOpStep      = faultinject.PointCtrlOpStep
)

// Fault actions.
const (
	FaultActError      = faultinject.ActError
	FaultActDelay      = faultinject.ActDelay
	FaultActCorrupt    = faultinject.ActCorrupt
	FaultActDrop       = faultinject.ActDrop
	FaultActFailDevice = faultinject.ActFailDevice
	FaultActPartition  = faultinject.ActPartition
	FaultActCrash      = faultinject.ActCrash
)

// Crash-consistent checkpoint journal (DESIGN.md §9): an append-only,
// CRC-framed record log that shadows the runtime's §4.6 checkpoint
// state on disk, so committed sessions survive daemon kills, torn
// writes and individually corrupt context images.
type (
	// Journal is an open checkpoint journal.
	Journal = ckptlog.Journal
	// JournalOptions tunes a journal (crash points, auto-compaction).
	JournalOptions = ckptlog.Options
	// JournalRecovered is the durable state OpenJournal reconstructed.
	JournalRecovered = ckptlog.Recovered
	// JournalQuarantine reports one context image recovery discarded.
	JournalQuarantine = ckptlog.Quarantine
	// JournalStats is a snapshot of a journal's counters.
	JournalStats = ckptlog.Stats
)

// OpenJournal opens (creating if needed) a journal directory and
// recovers its durable state: torn journal tails are truncated,
// individually corrupt context images quarantined. Feed the recovered
// state to Runtime.RecoverFromJournal, then Runtime.AttachJournal.
func OpenJournal(dir string, opts JournalOptions) (*Journal, *JournalRecovered, error) {
	return ckptlog.Open(dir, opts)
}

// JournalDie is the production OnCrash handler: SIGKILL the process at
// the armed boundary, exactly as a power loss would.
func JournalDie() { ckptlog.Die() }

// ErrCorruptJournalSnapshot reports an unrecoverable journal: the
// snapshot header itself is unreadable. Operators must intervene
// (restore the directory or move it aside) — silently starting empty
// would discard every committed session.
var ErrCorruptJournalSnapshot = ckptlog.ErrCorruptSnapshot

// NewFaultPlane arms a fault plan.
func NewFaultPlane(plan FaultPlan) *FaultPlane { return faultinject.New(plan) }

// Failover plane (DESIGN.md §13): lease-fenced session ownership and
// journaled live context migration across nodes.
type (
	// LeaseTable is the cluster's shared session-lease registry; wire
	// the same Table into every node's Config.Leases.
	LeaseTable = failover.Table
	// Lease is one session's ownership record.
	Lease = failover.Lease
	// FailoverMonitor promotes a peer for every session whose owner's
	// lease expired.
	FailoverMonitor = failover.Monitor
	// FailoverMonitorConfig tunes a FailoverMonitor.
	FailoverMonitorConfig = failover.MonitorConfig
	// MigrationPendingRecord describes one in-flight migration import
	// (the target's crash-safety sidecar).
	MigrationPendingRecord = failover.PendingRecord
)

// NewLeaseTable builds a session-lease table with the given TTL (<= 0
// selects the default) over the cluster's model clock.
func NewLeaseTable(ttl time.Duration, now func() time.Duration) *LeaseTable {
	return failover.NewTable(ttl, now)
}

// StartFailoverMonitor launches a lease-table scanner that steals
// expired leases and runs cfg.Promote for each deposed session.
func StartFailoverMonitor(cfg FailoverMonitorConfig) *FailoverMonitor {
	return failover.StartMonitor(cfg)
}

// MigrationPendingOps lists the in-flight import records in a migration
// directory (operator introspection; boot-time recovery resolves them).
func MigrationPendingOps(dir string) []MigrationPendingRecord {
	return failover.PendingOps(dir)
}

// Crash-resumable control plane (DESIGN.md §14): a transactional
// embedded cluster store (tenants, quotas, device/node membership) and
// a pending-operation engine that makes every mutating administrative
// action survive daemon crashes — recorded before execution, executed
// in idempotent steps, and at boot resumed or rolled back.
type (
	// CtrlStore is the keyed transactional store (CRC-framed WAL +
	// atomic-rename compaction, the checkpoint journal's discipline
	// generalized to arbitrary keys).
	CtrlStore = ctrlplane.Store
	// CtrlStoreOptions tunes a CtrlStore (crash points, compaction).
	CtrlStoreOptions = ctrlplane.Options
	// CtrlStoreStats is a snapshot of a store's counters.
	CtrlStoreStats = ctrlplane.Stats
	// CtrlManager executes mutations as journaled pending operations.
	CtrlManager = ctrlplane.Manager
	// CtrlManagerOptions tunes a CtrlManager.
	CtrlManagerOptions = ctrlplane.ManagerOptions
	// CtrlHooks is the runtime surface the control plane drives; the
	// Runtime implements it.
	CtrlHooks = ctrlplane.Hooks
	// CtrlOp is one journaled pending operation.
	CtrlOp = ctrlplane.Op
	// CtrlTenant is a registered tenant.
	CtrlTenant = ctrlplane.Tenant
	// CtrlQuota bounds a tenant's sessions and aggregate bytes.
	CtrlQuota = ctrlplane.Quota
	// CtrlSLO is one tenant's stored service-level objective record
	// (the declarative half; obs.SLOEngine evaluates it).
	CtrlSLO = ctrlplane.SLO
	// CtrlDeviceRec is a device membership record.
	CtrlDeviceRec = ctrlplane.DeviceRec
	// CtrlEvent describes one store commit to an /events watcher.
	CtrlEvent = ctrlplane.Event
	// CtrlCounters is a snapshot of a manager's operation counters.
	CtrlCounters = ctrlplane.Counters
)

// OpenCtrlStore opens (creating if needed) a control-plane store
// directory, recovering its state: torn WAL tails truncated, corrupt
// records quarantined.
func OpenCtrlStore(dir string, opts CtrlStoreOptions) (*CtrlStore, error) {
	return ctrlplane.Open(dir, opts)
}

// NewCtrlManager builds the pending-operation engine over an open
// store. Call Resume once at boot (before serving), then SyncDevices
// and ApplyStored to reconcile the runtime with the stored state.
func NewCtrlManager(store *CtrlStore, opts CtrlManagerOptions) *CtrlManager {
	return ctrlplane.NewManager(store, opts)
}

// ErrCorruptCtrlSnapshot reports an unrecoverable control-plane store
// snapshot header; operators must restore or move the directory aside.
var ErrCorruptCtrlSnapshot = ctrlplane.ErrCorruptSnapshot

// NewFailoverBackoff builds the decorrelated-jitter backoff used to
// space promotion retries.
func NewFailoverBackoff(base, cap time.Duration, rng *RNG) *resilience.Backoff {
	return resilience.NewBackoff(base, cap, rng)
}

// Resilience types: the self-healing layer's policy primitives (call
// deadlines, retry budgets, circuit breakers). Cluster nodes wire these
// automatically; they are exported for direct transport users and for
// tuning. See DESIGN.md §8.
type (
	// Retrier transparently retries transient failures under a budget.
	Retrier = resilience.Retrier
	// RetryPolicy configures a Retrier.
	RetryPolicy = resilience.RetryPolicy
	// RetryBudget is a token bucket capping retry amplification.
	RetryBudget = resilience.Budget
	// Breaker is a per-link circuit breaker (closed/open/half-open).
	Breaker = resilience.Breaker
	// BreakerState is a Breaker's current state.
	BreakerState = resilience.BreakerState
)

// Circuit breaker states.
const (
	BreakerClosed   = resilience.BreakerClosed
	BreakerOpen     = resilience.BreakerOpen
	BreakerHalfOpen = resilience.BreakerHalfOpen
)

// NewRetrier builds a retrier from a policy (zero fields get defaults).
func NewRetrier(p RetryPolicy) *Retrier { return resilience.NewRetrier(p) }

// NewRetryBudget builds a token bucket with the given capacity and
// model-time refill rate; now is typically Clock.Now.
func NewRetryBudget(capacity int, refillPerSec float64, now func() time.Duration) *RetryBudget {
	return resilience.NewBudget(capacity, refillPerSec, now)
}

// NewBreaker builds a circuit breaker tripping after threshold
// consecutive failures and probing again after cooldown of model time.
func NewBreaker(name string, threshold int, cooldown time.Duration, now func() time.Duration) *Breaker {
	return resilience.NewBreaker(name, threshold, cooldown, now)
}

// IsTransientError reports whether an error carries a code worth
// retrying (device momentarily gone, node overloaded, deadline, link
// down).
func IsTransientError(err error) bool { return resilience.Transient(err) }

// WithCallDeadline bounds every Call on conn to d of model time;
// expiry closes the connection and returns ErrDeadlineExceeded.
func WithCallDeadline(conn Conn, clock *Clock, d time.Duration) Conn {
	return transport.WithDeadline(conn, clock, d)
}

// Device models from the paper's testbed (§5.1).
var (
	TeslaC2050 = gpu.TeslaC2050
	TeslaC1060 = gpu.TeslaC1060
	Quadro2000 = gpu.Quadro2000
)

// CUDA-style result codes (a subset; see the api package for all).
const (
	Success                 = api.Success
	ErrMemoryAllocation     = api.ErrMemoryAllocation
	ErrInvalidValue         = api.ErrInvalidValue
	ErrInvalidDevicePointer = api.ErrInvalidDevicePointer
	ErrLaunchFailure        = api.ErrLaunchFailure
	ErrNoDevice             = api.ErrNoDevice
	ErrDeviceUnavailable    = api.ErrDeviceUnavailable
	ErrTooManyContexts      = api.ErrTooManyContexts
	ErrRuntimeUnstable      = api.ErrRuntimeUnstable
	ErrSwapAllocation       = api.ErrSwapAllocation
	ErrConnectionClosed     = api.ErrConnectionClosed
	ErrDeadlineExceeded     = api.ErrDeadlineExceeded
	ErrOverloaded           = api.ErrOverloaded
	ErrSessionClaimed       = api.ErrSessionClaimed
	ErrJournalFailure       = api.ErrJournalFailure
	ErrFenced               = api.ErrFenced
	ErrQuotaExceeded        = api.ErrQuotaExceeded
)

// ErrorCode extracts the result code from an error returned by the
// runtime or a Client: nil maps to Success, an Error anywhere in the
// wrap chain to itself, anything else to ErrLaunchFailure.
func ErrorCode(err error) Error { return api.Code(err) }

// NewClock returns a model clock executing one model second in scale
// wall seconds (0 or negative selects the 1 ms default).
func NewClock(scale float64) *Clock { return sim.NewClock(scale) }

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return sim.NewRNG(seed) }

// NewDevice creates a simulated GPU.
func NewDevice(id int, spec DeviceSpec, clock *Clock) *Device {
	return gpu.NewDevice(id, spec, clock)
}

// NewCUDARuntime creates the simulated CUDA driver+runtime for a node.
func NewCUDARuntime(clock *Clock, devices ...*Device) *CUDARuntime {
	return cudart.New(clock, devices...)
}

// NewRuntime creates the gvrt node runtime over a CUDA runtime.
func NewRuntime(crt *CUDARuntime, cfg Config) (*Runtime, error) {
	return core.New(crt, cfg)
}

// Pipe creates a connected in-process (client, server) connection pair.
func Pipe() (Conn, ServerConn) { return transport.Pipe() }

// Dial connects to a runtime daemon over TCP.
func Dial(addr string) (Conn, error) { return transport.Dial(addr) }

// Listen starts a TCP listener for runtime connections.
func Listen(addr string) (*Listener, error) { return transport.Listen(addr) }

// Connect wraps a connection as an application-side Client.
func Connect(conn Conn) *Client { return frontend.Connect(conn) }

// RegisterKernelImpl installs a process-local host implementation for a
// kernel, enabling end-to-end data flow through the simulated stack.
func RegisterKernelImpl(binaryID, kernel string, fn KernelFunc) {
	api.RegisterKernelImpl(binaryID, kernel, fn)
}

// NewClusterNode builds a compute node with the given devices.
func NewClusterNode(name string, clock *Clock, specs []DeviceSpec, cfg Config) (*ClusterNode, error) {
	return cluster.NewNode(name, clock, specs, cfg)
}

// NewClusterHead builds a TORQUE-like head over compute nodes.
func NewClusterHead(clock *Clock, nodes ...*ClusterNode) *ClusterHead {
	return cluster.NewHead(clock, nodes...)
}

// RunApp drives an application trace against a client.
func RunApp(clock *Clock, c CUDAClient, app App) error {
	return workload.Run(clock, c, app)
}

// RunBatch launches all apps concurrently and waits for the batch.
func RunBatch(clock *Clock, apps []App, connect func(job int) (CUDAClient, error)) BatchResult {
	return workload.RunBatch(clock, apps, connect)
}

// RandomShortBatch draws n jobs from the paper's short-running pool.
func RandomShortBatch(rng *RNG, n int) []App { return workload.RandomShortBatch(rng, n) }

// MixedLongBatch builds n long-running jobs: bslPercent% are BS-L and
// the rest MM-L with the given CPU fraction (the Figure 8/11 mixes).
func MixedLongBatch(n, bslPercent int, mmlCPUFraction float64) []App {
	return workload.MixedBatch(n, bslPercent, mmlCPUFraction)
}

// Benchmarks returns one instance of every Table 2 program.
func Benchmarks() []App { return workload.AllApps() }

// BenchmarkByName builds one Table 2 program by name; cpuFraction
// applies to the parameterised matrix multiplications (MM-S, MM-L) and
// is ignored for the rest. ok is false for an unknown name.
func BenchmarkByName(name string, cpuFraction float64) (App, bool) {
	switch name {
	case "MM-S":
		return workload.MMS(cpuFraction), true
	case "MM-L":
		return workload.MML(cpuFraction), true
	}
	for _, mk := range workload.ShortApps() {
		if app := mk(); app.Name == name {
			return app, true
		}
	}
	if name == "BS-L" {
		return workload.BSL(), true
	}
	return App{}, false
}

// NewBareClient attaches directly to the bare CUDA runtime (baseline).
func NewBareClient(crt *CUDARuntime, device int) (CUDAClient, error) {
	return workload.NewBareClient(crt, device)
}

// LocalNode bundles the common single-node setup: devices, CUDA
// runtime and gvrt runtime, with in-process client connections.
type LocalNode struct {
	ClockV *Clock
	CRT    *CUDARuntime
	RT     *Runtime
}

// NewLocalNode builds a ready-to-use single node.
func NewLocalNode(clock *Clock, cfg Config, specs ...DeviceSpec) (*LocalNode, error) {
	devs := make([]*Device, len(specs))
	for i, s := range specs {
		devs[i] = NewDevice(i, s, clock)
	}
	crt := NewCUDARuntime(clock, devs...)
	rt, err := NewRuntime(crt, cfg)
	if err != nil {
		return nil, err
	}
	return &LocalNode{ClockV: clock, CRT: crt, RT: rt}, nil
}

// Clock returns the node's model clock.
func (n *LocalNode) Clock() *Clock { return n.ClockV }

// OpenClient opens an in-process client served by the node's runtime.
func (n *LocalNode) OpenClient() *Client {
	c, s := Pipe()
	go n.RT.HandleConn(s)
	return Connect(c)
}

// Close shuts the node's runtime down.
func (n *LocalNode) Close() { n.RT.Close() }
